//! The coalition lattice: hypothetical sub-schedules for subcoalitions.
//!
//! The fair algorithm of Definition 3.1 is doubly recursive: the schedule
//! for a coalition `C` at time `t` depends on the *values* `v(C', t)` of all
//! subcoalitions `C' ⊂ C`, each produced by a fair algorithm for `C'`. The
//! paper's Figure 1 realizes this by keeping one schedule per subcoalition
//! and complementing them in size order at every time moment.
//!
//! [`CoalitionLattice`] is the event-driven equivalent: one lightweight
//! simulation ([`CoalitionSim`]) per tracked coalition, advanced lazily to
//! the decision time. Two policies are supported:
//!
//! * [`Policy::Fair`] — each coalition schedules by the Shapley rule
//!   `argmax(φ − ψ)` computed from **its own** subcoalitions (requires the
//!   tracked set to be subset-closed; used by REF),
//! * [`Policy::Fifo`] — each coalition schedules greedily in release order
//!   (any greedy policy yields the same coalition values for unit jobs,
//!   Proposition 5.4; used by RAND's sampled coalitions).
//!
//! Processing coalitions in size order at equal times is not load-bearing
//! here: `ψ_sp` of a job started at `t` is 0 *at* `t`, so subset values at
//! `t` are unaffected by the scheduling round at `t` itself — the lattice
//! exploits this to settle coalitions independently.
//!
//! # The fast path
//!
//! The lattice is the hottest loop in the codebase (REF touches `2^k`
//! sub-simulations per event time and `Σ_C 2^|C| = 3^k` subset values per
//! fully-busy scheduling round), so it is built around four invariants:
//!
//! 1. **Dense rank indexing.** Coalition bitmasks map to sim ranks through
//!    a flat `Vec<u32>` of length `2^k` (`u32::MAX` = untracked) whenever
//!    `k ≤ 20`; `value_of`/`shapley_for` lookups are array reads, not
//!    `HashMap` probes. Larger player counts (sparse RAND lattices) fall
//!    back to a `HashMap`.
//! 2. **Closed-form value polynomials.** Between its own start/completion
//!    events, a sim's coalition value is a quadratic in `t`:
//!    `2·v(t) = R·t² + (2·cu + R − 2·Σs)·t + (Σs² − Σs − 2·css)` with `R`
//!    running jobs, starts `s`, `cu` completed units and `css` the
//!    completed slot sum (the same closed forms [`SpTracker`] uses, summed
//!    over the members). `value_of` is therefore O(1) — no per-member
//!    tracker walk — and evaluating at a *later* `t` costs nothing.
//! 3. **Incremental Shapley.** `shapley_for(C)` is served from a cached
//!    per-coalition φ *polynomial* (the weighted sum of the subset value
//!    polynomials, stored doubled so all arithmetic stays in exact
//!    integers). Live caches are maintained **incrementally**: whenever a
//!    sim starts or completes a job, its value-polynomial delta
//!    `(Δa, Δb, Δc)` is pushed — with the correct subset weights — into
//!    every existing superset cache ([`Coalition::supersets_within`]), so
//!    a cached φ read is a pure `O(|C|)` evaluation. The `O(2^|C|)`
//!    from-scratch build happens exactly once per coalition, on its first
//!    read; after that, cost is proportional to how much of the lattice
//!    *actually changes*. Settled sims — empty queues, no pending
//!    completions — emit no deltas and therefore cost nothing, at any
//!    lattice size, and sims whose pick is forced (a single eligible
//!    organization — every singleton, in particular) never materialize a
//!    cache at all. Deltas are exact integers and addition commutes, so
//!    cached φ is bit-for-bit the from-scratch value; a start/completion
//!    delta also evaluates to 0 at its own event time, which keeps φ
//!    vectors read earlier in the same round exact. Only `Policy::Fair`
//!    lattices pay for (or benefit from) this machinery.
//! 4. **Batched wake-ups.** The event heap stores bare *times*, not
//!    `(time, sim)` pairs: a release wakes the lattice once per time
//!    moment instead of pushing one heap entry per tracked coalition per
//!    job (`2^(k−1)` pushes for a single release under the old scheme).
//!    Each processed time runs completions and one scheduling round over
//!    all sims.
//!
//! All four are pure strength reductions: schedules, tie-breaks, and φ/ψ
//! values are bit-for-bit identical to the from-scratch implementation
//! (`tests/golden_refrand.rs` pins this against pre-fast-path fixtures,
//! and the property tests below check φ against a from-scratch oracle).
//! [`CoalitionLattice::stats`] exposes counters (settles, rounds, φ cache
//! hits/rebuilds, …) that the `bench_baseline` harness records into
//! `BENCH_lattice.json`.
//!
//! Sub-simulations require job durations (to know when hypothetical copies
//! of a job complete). This is the execution-oracle boundary discussed in
//! DESIGN.md: REF/RAND are offline fairness benchmarks; information is used
//! causally (a duration is consumed only when the hypothetical job
//! completes, at a time ≤ the current decision time).

use crate::model::{OrgId, Time};
use crate::utility::{SpTracker, Util};
use coopgame::{factorial, Coalition, Player};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Scheduling policy inside each tracked coalition.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Shapley-fair selection (REF rule) — requires subset-closed tracking.
    Fair,
    /// Release-order greedy (FIFO) selection.
    Fifo,
}

/// A waiting hypothetical job inside a coalition simulation.
#[derive(Copy, Clone, Debug)]
struct WaitingJob {
    release: Time,
    proc: Time,
    seq: u64,
}

/// One coalition's hypothetical schedule state: machine occupancy, per-org
/// FIFO queues, exact `ψ_sp` trackers, and the aggregate value polynomial.
#[derive(Clone, Debug)]
pub struct CoalitionSim {
    coalition: Coalition,
    n_machines: usize,
    busy: usize,
    /// Per-organization queues (indexed by global org id; only members used).
    waiting: Vec<VecDeque<WaitingJob>>,
    /// Orgs with a non-empty queue (bitmask over global org ids) — the
    /// fast-reject for `can_schedule` scans.
    queued_mask: u64,
    /// Per-organization ψ trackers (for `org_value_at` / the fair rule).
    trackers: Vec<SpTracker>,
    /// Completion events local to this sim: (time, org, start).
    completions: BinaryHeap<Reverse<(Time, u32, Time)>>,
    /// Earliest pending completion (`Time::MAX` when none) — lets the
    /// per-round scan skip the heap peek for idle sims.
    next_completion: Time,
    /// Aggregate doubled-value polynomial over all members (see module
    /// docs): `2·v(t) = run_count·t² + (2·completed_units + run_count −
    /// 2·run_s_sum)·t + (run_s2_sum − run_s_sum − 2·completed_slot_sum)`.
    completed_units: Util,
    completed_slot_sum: Util,
    run_count: Util,
    run_s_sum: Util,
    run_s2_sum: Util,
    /// Within-step ψ bumps (org -> bump), valid at `bump_t`.
    bumps: Vec<Util>,
    bump_t: Time,
    /// Tie-break stamps for the fair rule.
    stamps: Vec<u64>,
    stamp_counter: u64,
    seq: u64,
}

impl CoalitionSim {
    fn new(coalition: Coalition, n_orgs: usize, n_machines: usize) -> Self {
        CoalitionSim {
            coalition,
            n_machines,
            busy: 0,
            waiting: vec![VecDeque::new(); n_orgs],
            queued_mask: 0,
            trackers: vec![SpTracker::new(); n_orgs],
            completions: BinaryHeap::new(),
            next_completion: Time::MAX,
            completed_units: 0,
            completed_slot_sum: 0,
            run_count: 0,
            run_s_sum: 0,
            run_s2_sum: 0,
            bumps: vec![0; n_orgs],
            bump_t: 0,
            stamps: vec![0; n_orgs],
            stamp_counter: 0,
            seq: 0,
        }
    }

    /// The coalition this sim schedules for.
    pub fn coalition(&self) -> Coalition {
        self.coalition
    }

    /// Machines available to this coalition.
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    fn release(&mut self, t: Time, org: OrgId, proc: Time) {
        debug_assert!(self.coalition.contains(Player(org.index())));
        self.seq += 1;
        self.queued_mask |= 1u64 << org.index();
        self.waiting[org.index()].push_back(WaitingJob {
            release: t,
            proc,
            seq: self.seq,
        });
    }

    /// Applies all completions at times ≤ `t`. Returns the number applied
    /// and the *net* doubled-value-polynomial delta `(Δa, Δb, Δc)` — each
    /// completion swaps its running-job term for a completed-job term:
    /// `2·Δv = −t² + (2p − 1 + 2s)·t + (s − s² − p·(s + ct − 1))`, which
    /// evaluates to 0 at `t = ct` (value continuity), so φ vectors read
    /// earlier in the same round stay exact.
    fn pop_completions_up_to(&mut self, t: Time) -> (u64, (Util, Util, Util)) {
        let mut applied = 0;
        let (mut da, mut db, mut dc) = (0, 0, 0);
        while let Some(Reverse((ct, org, start))) = self.completions.peek().copied() {
            if ct > t {
                break;
            }
            self.completions.pop();
            self.busy -= 1;
            self.trackers[org as usize].on_complete(start, ct);
            let p = (ct - start) as Util;
            let (s, c) = (start as Util, ct as Util);
            self.completed_units += p;
            self.completed_slot_sum += p * (s + c - 1) / 2;
            self.run_count -= 1;
            self.run_s_sum -= s;
            self.run_s2_sum -= s * s;
            da -= 1;
            db += 2 * p - 1 + 2 * s;
            dc += s - s * s - p * (s + c - 1);
            applied += 1;
        }
        if applied > 0 {
            self.next_completion =
                self.completions.peek().map_or(Time::MAX, |Reverse((ct, ..))| *ct);
        }
        (applied, (da, db, dc))
    }

    /// Whether a machine is free and some member has an eligible job at `t`.
    fn can_schedule(&self, t: Time) -> bool {
        self.busy < self.n_machines && self.queued_mask != 0 && self.has_eligible(t)
    }

    fn has_eligible(&self, t: Time) -> bool {
        let mut bits = self.queued_mask;
        while bits != 0 {
            let u = bits.trailing_zeros() as usize;
            if self.waiting[u].front().is_some_and(|j| j.release <= t) {
                return true;
            }
            bits &= bits - 1;
        }
        false
    }

    fn eligible(&self, org: OrgId, t: Time) -> bool {
        self.waiting[org.index()].front().is_some_and(|j| j.release <= t)
    }

    /// `Some(org)` iff exactly one member has an eligible job at `t`.
    fn sole_eligible(&self, t: Time) -> Option<OrgId> {
        let mut found = None;
        let mut bits = self.queued_mask;
        while bits != 0 {
            let u = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if self.waiting[u].front().is_some_and(|j| j.release <= t) {
                if found.is_some() {
                    return None;
                }
                found = Some(OrgId(u as u32));
            }
        }
        found
    }

    /// Starts the FIFO-head job of `org` at `t`; returns the completion time.
    fn start(&mut self, t: Time, org: OrgId) -> Time {
        let job = self.waiting[org.index()].pop_front().expect("no waiting job");
        if self.waiting[org.index()].is_empty() {
            self.queued_mask &= !(1u64 << org.index());
        }
        debug_assert!(job.release <= t);
        self.busy += 1;
        self.trackers[org.index()].on_start(t);
        let s = t as Util;
        self.run_count += 1;
        self.run_s_sum += s;
        self.run_s2_sum += s * s;
        if self.bump_t != t {
            self.bumps.fill(0);
            self.bump_t = t;
        }
        self.bumps[org.index()] += 1;
        self.stamp_counter += 1;
        self.stamps[org.index()] = self.stamp_counter;
        let completion = t + job.proc;
        self.completions.push(Reverse((completion, org.0, t)));
        self.next_completion = self.next_completion.min(completion);
        completion
    }

    /// The release-order pick: the member with the earliest-released
    /// eligible head job (ties by arrival order).
    fn fifo_pick(&self, t: Time) -> OrgId {
        let mut bits = self.queued_mask;
        let mut best: Option<(Time, u64, OrgId)> = None;
        while bits != 0 {
            let u = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if let Some(j) = self.waiting[u].front() {
                if j.release <= t {
                    let key = (j.release, j.seq, OrgId(u as u32));
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
        }
        best.expect("fifo_pick with nothing eligible").2
    }

    /// The doubled-value polynomial coefficients `(a, b, c)` with
    /// `2·v(t) = a·t² + b·t + c` (see module docs). Valid for any `t` not
    /// earlier than the sim's last applied event.
    fn doubled_poly(&self) -> (Util, Util, Util) {
        (
            self.run_count,
            2 * self.completed_units + self.run_count - 2 * self.run_s_sum,
            self.run_s2_sum - self.run_s_sum - 2 * self.completed_slot_sum,
        )
    }

    /// Coalition value `v(C, t) = Σ_{u∈C} ψ_sp(σ_C, u, t)` (bumps excluded).
    /// O(1) via the aggregate polynomial.
    pub fn value_at(&self, t: Time) -> Util {
        let (a, b, c) = self.doubled_poly();
        let t = t as Util;
        (a * t * t + b * t + c) / 2
    }

    /// One organization's utility in this coalition's schedule.
    pub fn org_value_at(&self, org: OrgId, t: Time) -> Util {
        self.trackers[org.index()].value_at(t)
    }

    fn bump(&self, org: OrgId, t: Time) -> Util {
        if self.bump_t == t {
            self.bumps[org.index()]
        } else {
            0
        }
    }
}

/// Coalition bits → sim rank. Dense (flat array) for small player counts,
/// `HashMap` fallback for sparse lattices over many players.
#[derive(Clone, Debug)]
enum CoalitionIndex {
    Dense(Vec<u32>),
    Sparse(HashMap<u64, u32>),
}

/// Sentinel for "not tracked" in the dense table.
const UNTRACKED: u32 = u32::MAX;

/// Player counts up to this use the dense table (`2^20` entries = 4 MiB).
const DENSE_INDEX_MAX_ORGS: usize = 20;

impl CoalitionIndex {
    fn build(n_orgs: usize, sims: &[CoalitionSim]) -> Self {
        if n_orgs <= DENSE_INDEX_MAX_ORGS {
            let mut table = vec![UNTRACKED; 1usize << n_orgs];
            for (rank, sim) in sims.iter().enumerate() {
                table[sim.coalition.bits() as usize] = rank as u32;
            }
            CoalitionIndex::Dense(table)
        } else {
            CoalitionIndex::Sparse(
                sims.iter()
                    .enumerate()
                    .map(|(rank, sim)| (sim.coalition.bits(), rank as u32))
                    .collect(),
            )
        }
    }

    #[inline]
    fn get(&self, bits: u64) -> Option<usize> {
        match self {
            CoalitionIndex::Dense(table) => {
                let rank = table[bits as usize];
                (rank != UNTRACKED).then_some(rank as usize)
            }
            CoalitionIndex::Sparse(map) => map.get(&bits).map(|&r| r as usize),
        }
    }
}

/// A cached φ polynomial for one coalition: the doubled Shapley sum over
/// its non-empty **proper** tracked subsets, per organization. The
/// coalition's own value term is added at evaluation time (so REF's
/// `grand_value` override needs no separate cache).
///
/// Live caches are kept current *eagerly*: whenever a sim's value
/// polynomial changes, the delta is pushed (with the right subset weights)
/// into every existing superset cache, so a φ read is a pure evaluation.
/// A cache is built from scratch — `O(2^|C|)` — only on its first read;
/// settled subcoalitions produce no deltas and therefore no work.
///
/// `pushes` counts deltas absorbed since the last read; once it exceeds
/// the cost of a from-scratch build (`2^|C|` subset visits) the cache is
/// *evicted* instead of updated (rent-to-buy: total maintenance stays
/// within 2× of the per-coalition optimum, whatever the read pattern).
#[derive(Clone, Debug)]
struct PhiCache {
    pushes: u64,
    /// Per-org `[quad, lin, cons]` doubled φ coefficients (interleaved for
    /// locality: one push touches a contiguous strip per org).
    coef: Vec<[i128; 3]>,
}

/// Counters describing the work a lattice performed — the raw material of
/// the `BENCH_lattice.json` baseline (see `fairsched-bench`'s
/// `bench_baseline`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LatticeStats {
    /// `settle` calls (one per value read / decision point).
    pub settles: u64,
    /// Distinct event times processed (completions + one scheduling round).
    pub rounds: u64,
    /// Job releases delivered to sims (fan-out, one per containing sim).
    pub releases: u64,
    /// Hypothetical job starts across all sims.
    pub sim_starts: u64,
    /// Hypothetical job completions applied across all sims.
    pub sim_completions: u64,
    /// φ served from a cached polynomial (pure evaluation).
    pub phi_cache_hits: u64,
    /// φ polynomial full builds (the `O(2^|C|)` from-scratch path).
    pub phi_recomputes: u64,
    /// Weighted sim deltas pushed into live φ caches.
    pub phi_deltas_applied: u64,
    /// φ caches evicted by the rent-to-buy rule (more pushes absorbed
    /// since the last read than a from-scratch build costs).
    pub phi_evictions: u64,
}

/// A lazily-advanced collection of coalition simulations sharing one event
/// clock.
#[derive(Clone, Debug)]
pub struct CoalitionLattice {
    n_orgs: usize,
    policy: Policy,
    /// Bits of the all-orgs coalition (the invalidation universe).
    universe: u64,
    /// Sims sorted by coalition size (ascending), then bits.
    sims: Vec<CoalitionSim>,
    /// Coalition bits → rank into `sims`.
    index: CoalitionIndex,
    /// Per-org list of sim ranks containing that org (release fan-out).
    org_sims: Vec<Vec<u32>>,
    /// Pending wake-up times (deduplicated on pop; one entry per time, not
    /// one per sim).
    wake: BinaryHeap<Reverse<Time>>,
    /// All events strictly before `advanced_to` have been fully processed
    /// (completions applied *and* scheduling rounds run).
    advanced_to: Time,
    /// Precomputed factorials `0..=n_orgs`.
    fact: Vec<i128>,
    /// Cached φ polynomials, parallel to `sims` (Fair policy only; kept
    /// current by eager delta pushes).
    phi: Vec<Option<Box<PhiCache>>>,
    /// Cached φ polynomial for the (possibly untracked) universe coalition.
    grand_phi: Option<Box<PhiCache>>,
    /// Number of live caches (`phi` entries + `grand_phi`); lets the delta
    /// push skip the superset walk entirely before the first φ read.
    live_caches: usize,
    /// Sims with a not-yet-pushed net value delta this round (ranks), the
    /// per-sim accumulated deltas, and the membership marks. Deltas within
    /// one time moment are additive and all evaluate to 0 at that moment,
    /// so one merged superset walk per changed sim per round suffices;
    /// flushed at the end of each processed time (and before any φ cache
    /// build, which snapshots live sim state).
    pending: Vec<u32>,
    pending_delta: Vec<(Util, Util, Util)>,
    pending_mark: Vec<bool>,
    stats: LatticeStats,
}

impl CoalitionLattice {
    /// A lattice tracking **every non-empty proper subcoalition** of the
    /// grand coalition, scheduling each with the fair (Shapley) rule — the
    /// configuration REF needs. `machines[u]` is organization `u`'s machine
    /// count.
    ///
    /// # Panics
    /// Panics if `n_orgs > 16` (`2^k` sims; REF is an FPT benchmark).
    pub fn full_proper(machines: &[usize]) -> Self {
        let n_orgs = machines.len();
        assert!(n_orgs <= 16, "full lattice supports at most 16 organizations");
        let grand = Coalition::grand(n_orgs);
        let coalitions: Vec<Coalition> =
            grand.proper_subsets().filter(|c| !c.is_empty()).collect();
        Self::with_coalitions(machines, &coalitions, Policy::Fair)
    }

    /// A lattice tracking an explicit set of coalitions with the given
    /// policy. For [`Policy::Fair`] the set must be subset-closed (checked).
    pub fn with_coalitions(
        machines: &[usize],
        coalitions: &[Coalition],
        policy: Policy,
    ) -> Self {
        let n_orgs = machines.len();
        let mut sims: Vec<CoalitionSim> = coalitions
            .iter()
            .filter(|c| !c.is_empty())
            .map(|&c| {
                let m = c.members().map(|p| machines[p.0]).sum();
                CoalitionSim::new(c, n_orgs, m)
            })
            .collect();
        sims.sort_by_key(|s| (s.coalition.len(), s.coalition.bits()));
        sims.dedup_by_key(|s| s.coalition.bits());
        let index = CoalitionIndex::build(n_orgs, &sims);
        if policy == Policy::Fair {
            for s in &sims {
                for sub in s.coalition.proper_subsets() {
                    if !sub.is_empty() {
                        assert!(
                            index.get(sub.bits()).is_some(),
                            "fair policy requires a subset-closed coalition set"
                        );
                    }
                }
            }
        }
        let mut org_sims: Vec<Vec<u32>> = vec![Vec::new(); n_orgs];
        for (rank, s) in sims.iter().enumerate() {
            for p in s.coalition.members() {
                org_sims[p.0].push(rank as u32);
            }
        }
        let fact = (0..=n_orgs).map(|i| factorial(i) as i128).collect();
        let n_sims = sims.len();
        CoalitionLattice {
            n_orgs,
            policy,
            universe: Coalition::grand(n_orgs).bits(),
            sims,
            index,
            org_sims,
            wake: BinaryHeap::new(),
            advanced_to: 0,
            fact,
            phi: vec![None; n_sims],
            grand_phi: None,
            live_caches: 0,
            pending: Vec::new(),
            pending_delta: vec![(0, 0, 0); n_sims],
            pending_mark: vec![false; n_sims],
            stats: LatticeStats::default(),
        }
    }

    /// Number of tracked coalitions.
    pub fn n_coalitions(&self) -> usize {
        self.sims.len()
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> LatticeStats {
        self.stats
    }

    /// Delivers a job release to every tracked coalition containing `org`.
    /// Releases must arrive in non-decreasing time order.
    pub fn release(&mut self, t: Time, org: OrgId, proc: Time) {
        self.advance_before(t);
        for &rank in &self.org_sims[org.index()] {
            self.sims[rank as usize].release(t, org, proc);
        }
        self.stats.releases += self.org_sims[org.index()].len() as u64;
        self.push_wake(t);
    }

    /// Fully settles every tracked coalition at time `t`: all events up to
    /// and including `t` are processed and every scheduling opportunity at
    /// `t` is taken. Must be called before reading values at `t`.
    pub fn settle(&mut self, t: Time) {
        self.stats.settles += 1;
        self.advance_before(t);
        self.pop_wakes_at(t);
        self.process_time(t);
        self.advanced_to = t;
    }

    /// One wake per time: duplicates are mostly avoided at push (cheap
    /// min-peek) and fully collapsed on pop.
    fn push_wake(&mut self, t: Time) {
        if self.wake.peek() != Some(&Reverse(t)) {
            self.wake.push(Reverse(t));
        }
    }

    fn pop_wakes_at(&mut self, t: Time) {
        while self.wake.peek() == Some(&Reverse(t)) {
            self.wake.pop();
        }
    }

    /// Processes all events strictly before `t`, running full scheduling
    /// rounds at each distinct event time.
    fn advance_before(&mut self, t: Time) {
        while let Some(&Reverse(et)) = self.wake.peek() {
            if et >= t {
                break;
            }
            self.pop_wakes_at(et);
            self.process_time(et);
            self.advanced_to = et;
        }
    }

    /// Applies completions at `t` in every sim, runs the scheduling round
    /// at `t`, then flushes the accumulated per-sim deltas into the live φ
    /// caches (one merged superset walk per changed sim).
    fn process_time(&mut self, t: Time) {
        self.stats.rounds += 1;
        let fair = self.policy == Policy::Fair;
        let mut completed = 0;
        for i in 0..self.sims.len() {
            if self.sims[i].next_completion > t {
                continue;
            }
            let (n, delta) = self.sims[i].pop_completions_up_to(t);
            completed += n;
            if fair && n > 0 {
                self.add_pending(i, delta);
            }
        }
        self.stats.sim_completions += completed;
        self.schedule_round(t);
        self.flush_pending();
    }

    /// Accumulates a sim's value delta for the current time moment.
    fn add_pending(&mut self, rank: usize, (da, db, dc): (Util, Util, Util)) {
        if !self.pending_mark[rank] {
            self.pending_mark[rank] = true;
            self.pending.push(rank as u32);
        }
        let acc = &mut self.pending_delta[rank];
        acc.0 += da;
        acc.1 += db;
        acc.2 += dc;
    }

    /// Pushes every accumulated delta into the live φ caches and clears
    /// the pending set. Must run before any φ cache *build* (the build
    /// snapshots live sim state, so a later push would double-count) and
    /// at the end of every processed time.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        for &rank in &pending {
            let rank = rank as usize;
            self.pending_mark[rank] = false;
            let delta = std::mem::take(&mut self.pending_delta[rank]);
            if delta != (0, 0, 0) {
                self.push_delta(self.sims[rank].coalition.bits(), delta);
            }
        }
        let mut pending = pending;
        pending.clear();
        self.pending = pending;
    }

    /// Pushes one sim's doubled-value-polynomial delta into every live
    /// superset φ cache, weighted exactly as a full build would weight that
    /// subset: `(|S|−1)!(|C|−|S|)!` for members of `S`,
    /// `−|S|!(|C|−|S|−1)!` for the rest of `C`. With no live caches (before
    /// the first φ read, and always under `Policy::Fifo`) this is free.
    /// Caches that have absorbed more pushes than a rebuild costs are
    /// evicted instead (rent-to-buy).
    fn push_delta(&mut self, bits: u64, (da, db, dc): (Util, Util, Util)) {
        if self.live_caches == 0 {
            return;
        }
        let s = Coalition::from_bits(bits);
        let s_len = s.len();
        let universe = Coalition::from_bits(self.universe);
        let mut applied = 0u64;
        for sup in s.supersets_within(universe) {
            if sup.bits() == bits {
                continue; // a coalition's own value is added at eval time
            }
            let slot = match self.index.get(sup.bits()) {
                Some(r) => &mut self.phi[r],
                None if sup.bits() == self.universe => &mut self.grand_phi,
                None => continue,
            };
            let Some(cache) = slot.as_deref_mut() else { continue };
            let size = sup.len();
            // Rent-to-buy: a rebuild visits 2^|C| subsets, so a cache that
            // absorbed ~that many pushes unread is cheaper to rebuild on
            // demand (the half factor measured best on the k=8 bench).
            if cache.pushes >= (1 << size) / 2 {
                *slot = None;
                self.live_caches -= 1;
                self.stats.phi_evictions += 1;
                continue;
            }
            cache.pushes += 1;
            let w_in = self.fact[s_len - 1] * self.fact[size - s_len];
            let (ia, ib, ic) = (w_in * da, w_in * db, w_in * dc);
            for p in s.members() {
                let c = &mut cache.coef[p.0];
                c[0] += ia;
                c[1] += ib;
                c[2] += ic;
            }
            let w_out = self.fact[s_len] * self.fact[size - s_len - 1];
            let (oa, ob, oc) = (w_out * da, w_out * db, w_out * dc);
            for p in sup.difference(s).members() {
                let c = &mut cache.coef[p.0];
                c[0] -= oa;
                c[1] -= ob;
                c[2] -= oc;
            }
            applied += 1;
        }
        self.stats.phi_deltas_applied += applied;
    }

    /// Runs the scheduling round at `t` over all sims (size order). Each
    /// sim's start deltas are pushed to the φ caches once per round (they
    /// are additive, and a start delta is 0 at `t` itself, so batching
    /// does not change any value read this round).
    fn schedule_round(&mut self, t: Time) {
        for i in 0..self.sims.len() {
            if !self.sims[i].can_schedule(t) {
                continue;
            }
            let mut started = 0u64;
            match self.policy {
                Policy::Fifo => {
                    while self.sims[i].can_schedule(t) {
                        let org = self.sims[i].fifo_pick(t);
                        started += 1;
                        let completion = self.sims[i].start(t, org);
                        self.push_wake(completion);
                    }
                }
                Policy::Fair => {
                    // Forced pick: with a single eligible organization the
                    // argmax is determined without φ (singleton sims — the
                    // busiest ones — always take this path).
                    if let Some(org) = self.sims[i].sole_eligible(t) {
                        // Starting `org`'s jobs cannot make another org
                        // eligible, so the pick stays forced all round.
                        while self.sims[i].can_schedule(t) {
                            started += 1;
                            let completion = self.sims[i].start(t, org);
                            self.push_wake(completion);
                        }
                    } else {
                        // φ is constant within the round (values at t don't
                        // see starts at t); only the started org's ψ bump
                        // and tie-break stamp change between starts, so the
                        // selection keys are computed once and patched.
                        let phi = self.shapley_for(self.sims[i].coalition, t, None);
                        let c_size = self.sims[i].coalition.len();
                        let scale = self.fact[c_size];
                        let sim = &self.sims[i];
                        // (key, stamp, org) per eligible member; argmax by
                        // key, ties to the smaller stamp, then smaller id —
                        // exactly the old comparator.
                        let mut cand: Vec<(i128, u64, OrgId)> = sim
                            .coalition
                            .members()
                            .map(|p| OrgId(p.0 as u32))
                            .filter(|&u| sim.eligible(u, t))
                            .map(|u| {
                                let key = phi[u.index()]
                                    - scale * (sim.org_value_at(u, t) + sim.bump(u, t));
                                (key, sim.stamps[u.index()], u)
                            })
                            .collect();
                        while self.sims[i].can_schedule(t) {
                            let best = cand
                                .iter()
                                .enumerate()
                                .max_by(|(_, a), (_, b)| {
                                    a.0.cmp(&b.0)
                                        .then_with(|| b.1.cmp(&a.1))
                                        .then_with(|| b.2 .0.cmp(&a.2 .0))
                                })
                                .map(|(idx, _)| idx)
                                .expect("can_schedule implies an eligible org");
                            let org = cand[best].2;
                            started += 1;
                            let completion = self.sims[i].start(t, org);
                            self.push_wake(completion);
                            let sim = &self.sims[i];
                            if sim.eligible(org, t) {
                                // ψ at t is untouched by a start at t; only
                                // the bump (+1 ⇒ key − scale) and the fresh
                                // stamp move.
                                cand[best].0 -= scale;
                                cand[best].1 = sim.stamps[org.index()];
                            } else {
                                cand.swap_remove(best);
                            }
                        }
                    }
                }
            }
            self.stats.sim_starts += started;
            if started > 0 && self.policy == Policy::Fair {
                // `n` jobs starting at s add running terms with the net
                // delta n·(t², (1−2s)·t, s² − s) — zero at t = s, so φ
                // vectors already read this round stay exact.
                let n = started as Util;
                let s = t as Util;
                self.add_pending(i, (n, n * (1 - 2 * s), n * (s * s - s)));
            }
        }
    }

    /// The value `v(C, t)` of a tracked coalition (or 0 for the empty
    /// coalition). The lattice must be settled at `t`.
    ///
    /// # Panics
    /// Panics if `c` is non-empty and untracked.
    pub fn value_of(&self, c: Coalition, t: Time) -> Util {
        if c.is_empty() {
            return 0;
        }
        let i = self.index.get(c.bits()).expect("coalition not tracked by this lattice");
        self.sims[i].value_at(t)
    }

    /// Exact Shapley contributions `φ_u · |C|!` for the members of `c` at
    /// time `t`, computed from the tracked subcoalition values. If
    /// `grand_value` is `Some(v)`, the value of `c` itself is taken to be
    /// `v` (REF passes the real schedule's value here); otherwise `c` must
    /// be tracked.
    ///
    /// Served from the per-coalition φ polynomial cache (Fair policy):
    /// live caches are kept current by eager delta pushes, so a cached
    /// read is a pure O(|C|) evaluation; the `O(2^|C|)` from-scratch build
    /// happens only on a coalition's first read.
    ///
    /// Returns a dense vector indexed by global org id (non-members 0).
    pub fn shapley_for(
        &mut self,
        c: Coalition,
        t: Time,
        grand_value: Option<Util>,
    ) -> Vec<i128> {
        if c.is_empty() {
            return vec![0; self.n_orgs];
        }
        let rank = self.index.get(c.bits());
        let cacheable =
            self.policy == Policy::Fair && (rank.is_some() || c.bits() == self.universe);
        if !cacheable {
            let cache = self.compute_proper_poly(c);
            return self.eval_phi(&cache, c, t, grand_value);
        }
        let has_cache = match rank {
            Some(r) => self.phi[r].is_some(),
            None => self.grand_phi.is_some(),
        };
        if has_cache {
            self.stats.phi_cache_hits += 1;
        } else {
            self.stats.phi_recomputes += 1;
            // The build snapshots live sim state; flush first so the
            // pending deltas are not applied to it again later.
            self.flush_pending();
            let cache = Box::new(self.compute_proper_poly(c));
            match rank {
                Some(r) => self.phi[r] = Some(cache),
                None => self.grand_phi = Some(cache),
            }
            self.live_caches += 1;
        }
        let cache = match rank {
            Some(r) => self.phi[r].as_deref_mut().expect("cache just ensured"),
            None => self.grand_phi.as_deref_mut().expect("cache just ensured"),
        };
        cache.pushes = 0; // the read restarts the rent-to-buy clock
        let cache = match rank {
            Some(r) => self.phi[r].as_deref().expect("cache just ensured"),
            None => self.grand_phi.as_deref().expect("cache just ensured"),
        };
        self.eval_phi(cache, c, t, grand_value)
    }

    /// Builds the doubled φ polynomial of `c` over its non-empty proper
    /// tracked subsets:
    ///
    /// For every proper subset `S ⊂ C` and every member `u`:
    ///   `u ∈ S: φ_u += (|S|−1)! (|C|−|S|)! v(S)`  (the `+v(S'∪u)` term)
    ///   `u ∉ S: φ_u −= |S|! (|C|−|S|−1)! v(S)`    (the `−v(S)` term)
    ///
    /// applied to the subset *value polynomials*, so one build serves every
    /// later `t` until a subset changes.
    fn compute_proper_poly(&self, c: Coalition) -> PhiCache {
        let size = c.len();
        let mut coef = vec![[0i128; 3]; self.n_orgs];
        for s in c.subsets() {
            if s.is_empty() || s == c {
                continue; // v(∅) = 0; the S = C term is added at eval time.
            }
            let rank =
                self.index.get(s.bits()).expect("coalition not tracked by this lattice");
            let (a, b, d) = self.sims[rank].doubled_poly();
            if a == 0 && b == 0 && d == 0 {
                continue;
            }
            let s_len = s.len();
            let w_in = self.fact[s_len - 1] * self.fact[size - s_len];
            let (ia, ib, ic) = (w_in * a, w_in * b, w_in * d);
            for p in s.members() {
                let e = &mut coef[p.0];
                e[0] += ia;
                e[1] += ib;
                e[2] += ic;
            }
            let w_out = self.fact[s_len] * self.fact[size - s_len - 1];
            let (oa, ob, oc) = (w_out * a, w_out * b, w_out * d);
            for p in c.difference(s).members() {
                let e = &mut coef[p.0];
                e[0] -= oa;
                e[1] -= ob;
                e[2] -= oc;
            }
        }
        PhiCache { pushes: 0, coef }
    }

    /// Evaluates a φ polynomial at `t` and adds the `S = C` self term:
    /// `(|C|−1)! · v(C, t)` for every member, with `v(C, t)` taken from
    /// `grand_value` or from `c`'s own sim. All sums are doubled integers;
    /// the final halving is exact.
    fn eval_phi(
        &self,
        cache: &PhiCache,
        c: Coalition,
        t: Time,
        grand_value: Option<Util>,
    ) -> Vec<i128> {
        let size = c.len();
        let tt = t as i128;
        let own_doubled = match grand_value {
            Some(g) => 2 * g,
            None => {
                let rank = self
                    .index
                    .get(c.bits())
                    .expect("coalition not tracked by this lattice");
                let (a, b, d) = self.sims[rank].doubled_poly();
                a * tt * tt + b * tt + d
            }
        };
        let w_self = self.fact[size - 1] * own_doubled;
        let mut phi = vec![0i128; self.n_orgs];
        for p in c.members() {
            let [a, b, d] = cache.coef[p.0];
            let doubled = a * tt * tt + b * tt + d;
            phi[p.0] = (doubled + w_self) / 2;
        }
        phi
    }

    /// The per-organization utilities inside a tracked coalition's
    /// hypothetical schedule at `t` (dense, non-members 0).
    pub fn org_values_of(&self, c: Coalition, t: Time) -> Vec<Util> {
        let i = self.index.get(c.bits()).expect("coalition not tracked by this lattice");
        (0..self.n_orgs).map(|u| self.sims[i].org_value_at(OrgId(u as u32), t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::sp_value;

    fn players(ids: &[usize]) -> Coalition {
        ids.iter().map(|&i| Player(i)).collect()
    }

    /// The pre-fast-path from-scratch Shapley sum, as an oracle: iterates
    /// every subset and weights the *values at `t`* directly.
    fn shapley_oracle(
        l: &CoalitionLattice,
        c: Coalition,
        t: Time,
        grand_value: Option<Util>,
    ) -> Vec<i128> {
        let n_orgs = l.n_orgs;
        let size = c.len();
        let fact: Vec<i128> = (0..=n_orgs).map(|i| factorial(i) as i128).collect();
        let mut phi = vec![0i128; n_orgs];
        for s in c.subsets() {
            if s.is_empty() {
                continue;
            }
            let v = if s == c {
                match grand_value {
                    Some(g) => g,
                    None => l.value_of(s, t),
                }
            } else {
                l.value_of(s, t)
            };
            if v == 0 {
                continue;
            }
            let s_len = s.len();
            let w_in = fact[s_len - 1] * fact[size - s_len];
            for p in s.members() {
                phi[p.0] += w_in * v;
            }
            if s_len < size {
                let w_out = fact[s_len] * fact[size - s_len - 1];
                for p in c.difference(s).members() {
                    phi[p.0] -= w_out * v;
                }
            }
        }
        phi
    }

    #[test]
    fn full_proper_counts() {
        let l = CoalitionLattice::full_proper(&[1, 1, 1]);
        // Non-empty proper subsets of a 3-set: 2^3 - 2 = 6.
        assert_eq!(l.n_coalitions(), 6);
    }

    #[test]
    fn singleton_schedules_fifo() {
        let mut l = CoalitionLattice::full_proper(&[1, 2]);
        // Org 0 releases two unit jobs at t=0.
        l.release(0, OrgId(0), 1);
        l.release(0, OrgId(0), 1);
        l.settle(0);
        let c0 = players(&[0]);
        assert_eq!(l.value_of(c0, 0), 0);
        // At t=2: first job (started 0, p=1) worth 2; second (started 1) worth 1.
        l.settle(2);
        assert_eq!(l.value_of(c0, 2), sp_value(0, 1, 2) + sp_value(1, 1, 2));
        assert_eq!(l.value_of(c0, 2), 3);
    }

    #[test]
    fn coalition_pools_machines() {
        // Org 0: 1 machine, 2 simultaneous unit jobs; org 1: 1 machine, no
        // jobs. In {0}: serial. In {0,1}: parallel... but {0,1} is the grand
        // coalition, not tracked by full_proper. Use an explicit lattice.
        let both = players(&[0, 1]);
        let mut l = CoalitionLattice::with_coalitions(
            &[1, 1],
            &[players(&[0]), players(&[1]), both],
            Policy::Fair,
        );
        l.release(0, OrgId(0), 1);
        l.release(0, OrgId(0), 1);
        l.settle(2);
        assert_eq!(l.value_of(players(&[0]), 2), 3); // serial: 2 + 1
        assert_eq!(l.value_of(both, 2), 4); // parallel: 2 + 2
        assert_eq!(l.value_of(players(&[1]), 2), 0);
    }

    #[test]
    fn proposition_5_5_values() {
        // The supermodularity counterexample: orgs a, b with 2 unit jobs
        // each at t=0, org c jobless; 1 machine each. Values at t=2.
        let mut l = CoalitionLattice::full_proper(&[1, 1, 1]);
        for _ in 0..2 {
            l.release(0, OrgId(0), 1);
            l.release(0, OrgId(1), 1);
        }
        l.settle(2);
        assert_eq!(l.value_of(players(&[0, 2]), 2), 4);
        assert_eq!(l.value_of(players(&[1, 2]), 2), 4);
        assert_eq!(l.value_of(players(&[2]), 2), 0);
        assert_eq!(l.value_of(players(&[0, 1]), 2), 6);
    }

    #[test]
    fn shapley_of_symmetric_coalition_splits_evenly() {
        // Two identical orgs: each 1 machine, one unit job at t=0.
        let both = players(&[0, 1]);
        let mut l = CoalitionLattice::with_coalitions(
            &[1, 1],
            &[players(&[0]), players(&[1]), both],
            Policy::Fair,
        );
        l.release(0, OrgId(0), 1);
        l.release(0, OrgId(1), 1);
        l.settle(5);
        let phi = l.shapley_for(both, 5, None);
        assert_eq!(phi[0], phi[1]);
        // Efficiency: Σ φ_scaled = v(C) · |C|!.
        let v = l.value_of(both, 5);
        assert_eq!(phi[0] + phi[1], v * 2);
    }

    #[test]
    fn shapley_dummy_org_gets_zero_when_it_adds_nothing() {
        // Org 1 has no machines and no jobs: v(S∪{1}) = v(S) for all S.
        let both = players(&[0, 1]);
        let mut l = CoalitionLattice::with_coalitions(
            &[1, 0],
            &[players(&[0]), players(&[1]), both],
            Policy::Fair,
        );
        l.release(0, OrgId(0), 2);
        l.settle(4);
        let phi = l.shapley_for(both, 4, None);
        assert_eq!(phi[1], 0);
        assert_eq!(phi[0], l.value_of(both, 4) * 2);
    }

    #[test]
    fn jobless_machine_owner_earns_contribution() {
        // Org 1 contributes a machine but no jobs; org 0 has two unit jobs.
        // v({0}) = 3 (serial), v({1}) = 0, v({0,1}) = 4 (parallel) at t=2.
        // φ_scaled(1) = Σ orderings marginal: orderings (0,1): v({0,1})−v({0}) = 1;
        // (1,0): v({1}) − 0 = 0 → φ(1) = (1+0) = 1 (scaled by 2!: 1·1! + ... )
        let both = players(&[0, 1]);
        let mut l = CoalitionLattice::with_coalitions(
            &[1, 1],
            &[players(&[0]), players(&[1]), both],
            Policy::Fair,
        );
        l.release(0, OrgId(0), 1);
        l.release(0, OrgId(0), 1);
        l.settle(2);
        let phi = l.shapley_for(both, 2, None);
        // φ(1)·2! = 1!(v({0,1})−v({0})) + 1!(v({1})−v(∅)) = (4−3) + 0 = 1.
        assert_eq!(phi[1], 1);
        assert_eq!(phi[0], 3 + 4); // 1!(v({0})−0) + 1!(v({0,1})−v({1})) = 3 + 4
    }

    #[test]
    fn fifo_policy_orders_by_release() {
        let c = players(&[0, 1]);
        let mut l = CoalitionLattice::with_coalitions(&[1, 0], &[c], Policy::Fifo);
        // One machine total. Org 1 releases earlier.
        l.release(0, OrgId(1), 3);
        l.release(1, OrgId(0), 3);
        l.settle(10);
        // Org 1's job runs 0..3, org 0's 3..6.
        assert_eq!(l.org_values_of(c, 10)[1], sp_value(0, 3, 10));
        assert_eq!(l.org_values_of(c, 10)[0], sp_value(3, 3, 10));
    }

    #[test]
    fn lazy_advance_processes_intermediate_events() {
        let c = players(&[0]);
        let mut l = CoalitionLattice::with_coalitions(&[1], &[c], Policy::Fifo);
        // Three sequential jobs released at 0; settle only at the end.
        for _ in 0..3 {
            l.release(0, OrgId(0), 2);
        }
        l.settle(100);
        // They must have run back-to-back: starts 0, 2, 4.
        let expected = sp_value(0, 2, 100) + sp_value(2, 2, 100) + sp_value(4, 2, 100);
        assert_eq!(l.value_of(c, 100), expected);
    }

    #[test]
    fn release_after_idle_starts_immediately() {
        let c = players(&[0]);
        let mut l = CoalitionLattice::with_coalitions(&[1], &[c], Policy::Fifo);
        l.release(5, OrgId(0), 1);
        l.settle(10);
        assert_eq!(l.value_of(c, 10), sp_value(5, 1, 10));
    }

    #[test]
    #[should_panic(expected = "subset-closed")]
    fn fair_policy_requires_subset_closure() {
        let _ =
            CoalitionLattice::with_coalitions(&[1, 1], &[players(&[0, 1])], Policy::Fair);
    }

    #[test]
    fn shapley_efficiency_on_lattice() {
        // Random-ish 3-org setup; check Σφ = v(C)·|C|! for the tracked
        // 2-coalitions.
        let mut l = CoalitionLattice::full_proper(&[2, 1, 1]);
        l.release(0, OrgId(0), 3);
        l.release(1, OrgId(1), 2);
        l.release(1, OrgId(2), 4);
        l.release(2, OrgId(0), 1);
        l.settle(20);
        for ids in [[0usize, 1], [0, 2], [1, 2]] {
            let c = players(&ids);
            let phi = l.shapley_for(c, 20, None);
            let total: i128 = phi.iter().sum();
            assert_eq!(total, l.value_of(c, 20) * 2, "efficiency failed for {c:?}");
        }
    }

    #[test]
    fn cached_phi_matches_oracle_across_event_interleavings() {
        // Drive a full 4-org lattice through an irregular event sequence,
        // querying φ at every step; the cached polynomial must equal the
        // from-scratch oracle every time (including pure time passage with
        // no new events, where the cache is served verbatim).
        let mut l = CoalitionLattice::full_proper(&[1, 2, 1, 1]);
        let grand = Coalition::grand(4);
        let script: &[(Time, u32, Time)] = &[
            (0, 0, 3),
            (0, 1, 1),
            (1, 2, 5),
            (1, 0, 2),
            (4, 3, 1),
            (4, 1, 4),
            (9, 0, 1),
            (15, 2, 2),
        ];
        let check_at = |l: &mut CoalitionLattice, t: Time| {
            l.settle(t);
            for c in grand.proper_subsets() {
                if c.is_empty() {
                    continue;
                }
                let fast = l.shapley_for(c, t, None);
                let oracle = shapley_oracle(l, c, t, None);
                assert_eq!(fast, oracle, "φ mismatch for {c:?} at t={t}");
            }
            // The grand coalition with an external value (REF's usage).
            let fast = l.shapley_for(grand, t, Some(1234));
            let oracle = shapley_oracle(l, grand, t, Some(1234));
            assert_eq!(fast, oracle, "grand φ mismatch at t={t}");
        };
        for &(t, org, proc) in script {
            l.release(t, OrgId(org), proc);
            check_at(&mut l, t);
            check_at(&mut l, t + 1); // time passes, no new events
        }
        check_at(&mut l, 40);
        check_at(&mut l, 41);
        let stats = l.stats();
        assert!(stats.phi_cache_hits > 0, "no cache hits: {stats:?}");
        assert!(stats.phi_recomputes > 0, "no recomputes: {stats:?}");
    }

    proptest::proptest! {
        /// Incremental φ (polynomial caches + delta pushes + rent-to-buy
        /// evictions) equals a from-scratch recomputation over *random*
        /// traces and event orders, at release times, at completion-driven
        /// in-between times, and after long idle gaps.
        #[test]
        fn prop_incremental_phi_matches_oracle(
            events in proptest::collection::vec((0u64..15, 0u32..4, 1u64..7), 1..20),
            probe_orgs in proptest::collection::vec(0u32..4, 3),
            extra in 1u64..25,
        ) {
            let mut l = CoalitionLattice::full_proper(&[1, 2, 1, 1]);
            let grand = Coalition::grand(4);
            let mut t = 0;
            for (i, &(dt, org, proc)) in events.iter().enumerate() {
                t += dt; // releases arrive in non-decreasing time order
                l.release(t, OrgId(org), proc);
                l.settle(t);
                // Probe a rotating subset of coalitions (so some caches go
                // cold and get evicted / rebuilt between probes).
                let probe = Coalition::singleton(Player(
                    probe_orgs[i % probe_orgs.len()] as usize,
                ))
                .insert(Player((org as usize + 1) % 4))
                .insert(Player(org as usize));
                let fast = l.shapley_for(probe, t, None);
                let oracle = shapley_oracle(&l, probe, t, None);
                proptest::prop_assert_eq!(fast, oracle);
            }
            // Drain everything, then check every proper coalition and the
            // grand coalition (REF's external-value form).
            let end = t + extra;
            l.settle(end);
            for c in grand.proper_subsets() {
                if c.is_empty() {
                    continue;
                }
                let fast = l.shapley_for(c, end, None);
                let oracle = shapley_oracle(&l, c, end, None);
                proptest::prop_assert_eq!(fast, oracle);
            }
            let fast = l.shapley_for(grand, end, Some(777));
            let oracle = shapley_oracle(&l, grand, end, Some(777));
            proptest::prop_assert_eq!(fast, oracle);
        }
    }

    #[test]
    fn settled_lattice_serves_phi_from_cache() {
        let mut l = CoalitionLattice::full_proper(&[1, 1, 1]);
        l.release(0, OrgId(0), 2);
        l.release(0, OrgId(1), 1);
        l.settle(10); // everything completed well before 10
        let c = players(&[0, 1]);
        let first = l.shapley_for(c, 10, None);
        let before = l.stats();
        // Pure time passage: the queue is empty and no completions are
        // pending, so later reads must be pure cache hits.
        for t in 11..20 {
            l.settle(t);
            let phi = l.shapley_for(c, t, None);
            assert_eq!(phi, shapley_oracle(&l, c, t, None));
        }
        let after = l.stats();
        assert_eq!(
            after.phi_recomputes, before.phi_recomputes,
            "settled sims must not trigger φ rebuilds"
        );
        assert!(after.phi_cache_hits >= before.phi_cache_hits + 9);
        assert!(!first.is_empty());
    }

    #[test]
    fn sparse_index_fallback_beyond_dense_limit() {
        // 24 orgs forces the HashMap index; track a tiny Fifo lattice.
        let machines = vec![1usize; 24];
        let c = players(&[0, 23]);
        let mut l = CoalitionLattice::with_coalitions(
            &machines,
            &[c, players(&[0]), players(&[23])],
            Policy::Fifo,
        );
        assert!(matches!(l.index, CoalitionIndex::Sparse(_)));
        l.release(0, OrgId(23), 2);
        l.settle(5);
        assert_eq!(l.value_of(c, 5), sp_value(0, 2, 5));
        assert_eq!(l.value_of(players(&[23]), 5), sp_value(0, 2, 5));
        assert_eq!(l.value_of(players(&[0]), 5), 0);
    }

    #[test]
    fn stats_track_release_fanout_and_rounds() {
        let mut l = CoalitionLattice::full_proper(&[1, 1, 1]);
        l.release(0, OrgId(0), 1);
        // Org 0 appears in 3 of the 6 proper subcoalitions: {0}, {0,1}, {0,2}.
        assert_eq!(l.stats().releases, 3);
        l.settle(0);
        assert!(l.stats().sim_starts >= 3);
        assert!(l.stats().rounds >= 1);
        assert_eq!(l.stats().settles, 1);
    }
}
