//! The coalition lattice: hypothetical sub-schedules for subcoalitions.
//!
//! The fair algorithm of Definition 3.1 is doubly recursive: the schedule
//! for a coalition `C` at time `t` depends on the *values* `v(C', t)` of all
//! subcoalitions `C' ⊂ C`, each produced by a fair algorithm for `C'`. The
//! paper's Figure 1 realizes this by keeping one schedule per subcoalition
//! and complementing them in size order at every time moment.
//!
//! [`CoalitionLattice`] is the event-driven equivalent: one lightweight
//! simulation ([`CoalitionSim`]) per tracked coalition, advanced lazily to
//! the decision time. Two policies are supported:
//!
//! * [`Policy::Fair`] — each coalition schedules by the Shapley rule
//!   `argmax(φ − ψ)` computed from **its own** subcoalitions (requires the
//!   tracked set to be subset-closed; used by REF),
//! * [`Policy::Fifo`] — each coalition schedules greedily in release order
//!   (any greedy policy yields the same coalition values for unit jobs,
//!   Proposition 5.4; used by RAND's sampled coalitions).
//!
//! Processing coalitions in size order at equal times is not load-bearing
//! here: `ψ_sp` of a job started at `t` is 0 *at* `t`, so subset values at
//! `t` are unaffected by the scheduling round at `t` itself — the lattice
//! exploits this to settle coalitions independently.
//!
//! Sub-simulations require job durations (to know when hypothetical copies
//! of a job complete). This is the execution-oracle boundary discussed in
//! DESIGN.md: REF/RAND are offline fairness benchmarks; information is used
//! causally (a duration is consumed only when the hypothetical job
//! completes, at a time ≤ the current decision time).

use crate::model::{OrgId, Time};
use crate::utility::{SpTracker, Util};
use coopgame::{factorial, Coalition, Player};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Scheduling policy inside each tracked coalition.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Shapley-fair selection (REF rule) — requires subset-closed tracking.
    Fair,
    /// Release-order greedy (FIFO) selection.
    Fifo,
}

/// A waiting hypothetical job inside a coalition simulation.
#[derive(Copy, Clone, Debug)]
struct WaitingJob {
    release: Time,
    proc: Time,
    seq: u64,
}

/// One coalition's hypothetical schedule state: machine occupancy, per-org
/// FIFO queues and exact `ψ_sp` trackers.
#[derive(Clone, Debug)]
pub struct CoalitionSim {
    coalition: Coalition,
    n_machines: usize,
    busy: usize,
    /// Per-organization queues (indexed by global org id; only members used).
    waiting: Vec<VecDeque<WaitingJob>>,
    /// Per-organization ψ trackers.
    trackers: Vec<SpTracker>,
    /// Completion events local to this sim: (time, org, start).
    completions: BinaryHeap<Reverse<(Time, u32, Time)>>,
    /// Within-step ψ bumps (org -> bump), valid at `bump_t`.
    bumps: Vec<Util>,
    bump_t: Time,
    /// Tie-break stamps for the fair rule.
    stamps: Vec<u64>,
    stamp_counter: u64,
    seq: u64,
}

impl CoalitionSim {
    fn new(coalition: Coalition, n_orgs: usize, n_machines: usize) -> Self {
        CoalitionSim {
            coalition,
            n_machines,
            busy: 0,
            waiting: vec![VecDeque::new(); n_orgs],
            trackers: vec![SpTracker::new(); n_orgs],
            completions: BinaryHeap::new(),
            bumps: vec![0; n_orgs],
            bump_t: 0,
            stamps: vec![0; n_orgs],
            stamp_counter: 0,
            seq: 0,
        }
    }

    /// The coalition this sim schedules for.
    pub fn coalition(&self) -> Coalition {
        self.coalition
    }

    /// Machines available to this coalition.
    pub fn n_machines(&self) -> usize {
        self.n_machines
    }

    fn release(&mut self, t: Time, org: OrgId, proc: Time) {
        debug_assert!(self.coalition.contains(Player(org.index())));
        self.seq += 1;
        self.waiting[org.index()].push_back(WaitingJob {
            release: t,
            proc,
            seq: self.seq,
        });
    }

    /// Applies all completions at times ≤ `t`.
    fn pop_completions_up_to(&mut self, t: Time) {
        while let Some(Reverse((ct, org, start))) = self.completions.peek().copied() {
            if ct > t {
                break;
            }
            self.completions.pop();
            self.busy -= 1;
            self.trackers[org as usize].on_complete(start, ct);
        }
    }

    /// Whether a machine is free and some member has an eligible job at `t`.
    fn can_schedule(&self, t: Time) -> bool {
        self.busy < self.n_machines && self.has_eligible(t)
    }

    fn has_eligible(&self, t: Time) -> bool {
        self.coalition.members().any(|p| self.eligible(OrgId(p.0 as u32), t))
    }

    fn eligible(&self, org: OrgId, t: Time) -> bool {
        self.waiting[org.index()].front().is_some_and(|j| j.release <= t)
    }

    /// Starts the FIFO-head job of `org` at `t`; returns the completion time.
    fn start(&mut self, t: Time, org: OrgId) -> Time {
        let job = self.waiting[org.index()].pop_front().expect("no waiting job");
        debug_assert!(job.release <= t);
        self.busy += 1;
        self.trackers[org.index()].on_start(t);
        if self.bump_t != t {
            self.bumps.fill(0);
            self.bump_t = t;
        }
        self.bumps[org.index()] += 1;
        self.stamp_counter += 1;
        self.stamps[org.index()] = self.stamp_counter;
        let completion = t + job.proc;
        self.completions.push(Reverse((completion, org.0, t)));
        completion
    }

    /// The release-order pick: the member with the earliest-released
    /// eligible head job (ties by arrival order).
    fn fifo_pick(&self, t: Time) -> OrgId {
        self.coalition
            .members()
            .map(|p| OrgId(p.0 as u32))
            .filter(|&u| self.eligible(u, t))
            .min_by_key(|u| {
                let j = self.waiting[u.index()].front().unwrap();
                (j.release, j.seq)
            })
            .expect("fifo_pick with nothing eligible")
    }

    /// Coalition value `v(C, t) = Σ_{u∈C} ψ_sp(σ_C, u, t)` (bumps excluded).
    pub fn value_at(&self, t: Time) -> Util {
        self.coalition.members().map(|p| self.trackers[p.0].value_at(t)).sum()
    }

    /// One organization's utility in this coalition's schedule.
    pub fn org_value_at(&self, org: OrgId, t: Time) -> Util {
        self.trackers[org.index()].value_at(t)
    }

    fn bump(&self, org: OrgId, t: Time) -> Util {
        if self.bump_t == t {
            self.bumps[org.index()]
        } else {
            0
        }
    }
}

/// A lazily-advanced collection of coalition simulations sharing one event
/// clock.
#[derive(Clone, Debug)]
pub struct CoalitionLattice {
    n_orgs: usize,
    policy: Policy,
    /// Sims sorted by coalition size (ascending).
    sims: Vec<CoalitionSim>,
    /// Coalition bits → index into `sims`.
    index: HashMap<u64, usize>,
    /// Pending wake-ups: (time, sim index).
    events: BinaryHeap<Reverse<(Time, usize)>>,
    /// All events strictly before `advanced_to` have been fully processed
    /// (completions applied *and* scheduling rounds run).
    advanced_to: Time,
    /// Precomputed factorials `0..=n_orgs`.
    fact: Vec<i128>,
}

impl CoalitionLattice {
    /// A lattice tracking **every non-empty proper subcoalition** of the
    /// grand coalition, scheduling each with the fair (Shapley) rule — the
    /// configuration REF needs. `machines[u]` is organization `u`'s machine
    /// count.
    ///
    /// # Panics
    /// Panics if `n_orgs > 16` (`2^k` sims; REF is an FPT benchmark).
    pub fn full_proper(machines: &[usize]) -> Self {
        let n_orgs = machines.len();
        assert!(n_orgs <= 16, "full lattice supports at most 16 organizations");
        let grand = Coalition::grand(n_orgs);
        let coalitions: Vec<Coalition> =
            grand.proper_subsets().filter(|c| !c.is_empty()).collect();
        Self::with_coalitions(machines, &coalitions, Policy::Fair)
    }

    /// A lattice tracking an explicit set of coalitions with the given
    /// policy. For [`Policy::Fair`] the set must be subset-closed (checked).
    pub fn with_coalitions(
        machines: &[usize],
        coalitions: &[Coalition],
        policy: Policy,
    ) -> Self {
        let n_orgs = machines.len();
        let mut sims: Vec<CoalitionSim> = coalitions
            .iter()
            .filter(|c| !c.is_empty())
            .map(|&c| {
                let m = c.members().map(|p| machines[p.0]).sum();
                CoalitionSim::new(c, n_orgs, m)
            })
            .collect();
        sims.sort_by_key(|s| (s.coalition.len(), s.coalition.bits()));
        sims.dedup_by_key(|s| s.coalition.bits());
        let index: HashMap<u64, usize> =
            sims.iter().enumerate().map(|(i, s)| (s.coalition.bits(), i)).collect();
        if policy == Policy::Fair {
            for s in &sims {
                for sub in s.coalition.proper_subsets() {
                    if !sub.is_empty() {
                        assert!(
                            index.contains_key(&sub.bits()),
                            "fair policy requires a subset-closed coalition set"
                        );
                    }
                }
            }
        }
        let fact = (0..=n_orgs).map(|i| factorial(i) as i128).collect();
        CoalitionLattice {
            n_orgs,
            policy,
            sims,
            index,
            events: BinaryHeap::new(),
            advanced_to: 0,
            fact,
        }
    }

    /// Number of tracked coalitions.
    pub fn n_coalitions(&self) -> usize {
        self.sims.len()
    }

    /// Delivers a job release to every tracked coalition containing `org`.
    /// Releases must arrive in non-decreasing time order.
    pub fn release(&mut self, t: Time, org: OrgId, proc: Time) {
        self.advance_before(t);
        let player = Player(org.index());
        for i in 0..self.sims.len() {
            if self.sims[i].coalition.contains(player) {
                self.sims[i].release(t, org, proc);
                // Wake the sim at t so settle() runs its scheduling round.
                self.events.push(Reverse((t, i)));
            }
        }
    }

    /// Fully settles every tracked coalition at time `t`: all events up to
    /// and including `t` are processed and every scheduling opportunity at
    /// `t` is taken. Must be called before reading values at `t`.
    pub fn settle(&mut self, t: Time) {
        self.advance_before(t);
        // Apply completions at exactly t, then run the scheduling round at t.
        let mut wake: Vec<usize> = Vec::new();
        while let Some(&Reverse((et, i))) = self.events.peek() {
            if et > t {
                break;
            }
            self.events.pop();
            wake.push(i);
        }
        wake.sort_unstable();
        wake.dedup();
        for &i in &wake {
            self.sims[i].pop_completions_up_to(t);
        }
        // Scheduling may be possible in sims not woken (e.g. repeated settle
        // calls at the same t after new releases): check every sim with a
        // pending queue. Cheap relative to the Shapley work.
        self.schedule_round(t);
        self.advanced_to = t;
    }

    /// Processes all events strictly before `t`, running full scheduling
    /// rounds at each event time.
    fn advance_before(&mut self, t: Time) {
        while let Some(&Reverse((et, _))) = self.events.peek() {
            if et >= t {
                break;
            }
            // Gather every sim with an event at `et`.
            let mut wake = Vec::new();
            while let Some(&Reverse((e2, i))) = self.events.peek() {
                if e2 > et {
                    break;
                }
                self.events.pop();
                wake.push(i);
            }
            wake.sort_unstable();
            wake.dedup();
            for &i in &wake {
                self.sims[i].pop_completions_up_to(et);
            }
            self.schedule_round(et);
            self.advanced_to = et;
        }
    }

    /// Runs the scheduling round at `t` over all sims (size order).
    fn schedule_round(&mut self, t: Time) {
        for i in 0..self.sims.len() {
            if !self.sims[i].can_schedule(t) {
                continue;
            }
            match self.policy {
                Policy::Fifo => {
                    while self.sims[i].can_schedule(t) {
                        let org = self.sims[i].fifo_pick(t);
                        let completion = self.sims[i].start(t, org);
                        self.events.push(Reverse((completion, i)));
                    }
                }
                Policy::Fair => {
                    // φ is constant within the round (values at t don't see
                    // starts at t); only ψ bumps change between starts.
                    let phi = self.shapley_for(self.sims[i].coalition, t, None);
                    let c_size = self.sims[i].coalition.len();
                    let scale = self.fact[c_size];
                    while self.sims[i].can_schedule(t) {
                        let sim = &self.sims[i];
                        let org = sim
                            .coalition
                            .members()
                            .map(|p| OrgId(p.0 as u32))
                            .filter(|&u| sim.eligible(u, t))
                            .max_by(|&a, &b| {
                                let ka = phi[a.index()]
                                    - scale * (sim.org_value_at(a, t) + sim.bump(a, t));
                                let kb = phi[b.index()]
                                    - scale * (sim.org_value_at(b, t) + sim.bump(b, t));
                                ka.cmp(&kb)
                                    .then_with(|| {
                                        sim.stamps[b.index()].cmp(&sim.stamps[a.index()])
                                    })
                                    .then_with(|| b.0.cmp(&a.0))
                            })
                            .expect("can_schedule implies an eligible org");
                        let completion = self.sims[i].start(t, org);
                        self.events.push(Reverse((completion, i)));
                    }
                }
            }
        }
    }

    /// The value `v(C, t)` of a tracked coalition (or 0 for the empty
    /// coalition). The lattice must be settled at `t`.
    ///
    /// # Panics
    /// Panics if `c` is non-empty and untracked.
    pub fn value_of(&self, c: Coalition, t: Time) -> Util {
        if c.is_empty() {
            return 0;
        }
        let &i =
            self.index.get(&c.bits()).expect("coalition not tracked by this lattice");
        self.sims[i].value_at(t)
    }

    /// Exact Shapley contributions `φ_u · |C|!` for the members of `c` at
    /// time `t`, computed from the tracked subcoalition values. If
    /// `grand_value` is `Some(v)`, the value of `c` itself is taken to be
    /// `v` (REF passes the real schedule's value here); otherwise `c` must
    /// be tracked.
    ///
    /// Returns a dense vector indexed by global org id (non-members 0).
    pub fn shapley_for(
        &self,
        c: Coalition,
        t: Time,
        grand_value: Option<Util>,
    ) -> Vec<i128> {
        let size = c.len();
        let mut phi = vec![0i128; self.n_orgs];
        // For every subset S of C and every member u:
        //   u ∈ S: φ_u += (|S|-1)! (|C|-|S|)! v(S)   [the +v(S'∪u) term]
        //   u ∉ S: φ_u -= |S|! (|C|-|S|-1)! v(S)     [the −v(S) term]
        for s in c.subsets() {
            if s.is_empty() {
                continue; // v(∅) = 0 contributes nothing.
            }
            let v = if s == c {
                match grand_value {
                    Some(g) => g,
                    None => self.value_of(s, t),
                }
            } else {
                self.value_of(s, t)
            };
            if v == 0 {
                continue;
            }
            let s_len = s.len();
            let w_in = self.fact[s_len - 1] * self.fact[size - s_len];
            for p in s.members() {
                phi[p.0] += w_in * v;
            }
            if s_len < size {
                let w_out = self.fact[s_len] * self.fact[size - s_len - 1];
                for p in c.difference(s).members() {
                    phi[p.0] -= w_out * v;
                }
            }
        }
        phi
    }

    /// The per-organization utilities inside a tracked coalition's
    /// hypothetical schedule at `t` (dense, non-members 0).
    pub fn org_values_of(&self, c: Coalition, t: Time) -> Vec<Util> {
        let &i =
            self.index.get(&c.bits()).expect("coalition not tracked by this lattice");
        (0..self.n_orgs).map(|u| self.sims[i].org_value_at(OrgId(u as u32), t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::sp_value;

    fn players(ids: &[usize]) -> Coalition {
        ids.iter().map(|&i| Player(i)).collect()
    }

    #[test]
    fn full_proper_counts() {
        let l = CoalitionLattice::full_proper(&[1, 1, 1]);
        // Non-empty proper subsets of a 3-set: 2^3 - 2 = 6.
        assert_eq!(l.n_coalitions(), 6);
    }

    #[test]
    fn singleton_schedules_fifo() {
        let mut l = CoalitionLattice::full_proper(&[1, 2]);
        // Org 0 releases two unit jobs at t=0.
        l.release(0, OrgId(0), 1);
        l.release(0, OrgId(0), 1);
        l.settle(0);
        let c0 = players(&[0]);
        assert_eq!(l.value_of(c0, 0), 0);
        // At t=2: first job (started 0, p=1) worth 2; second (started 1) worth 1.
        l.settle(2);
        assert_eq!(l.value_of(c0, 2), sp_value(0, 1, 2) + sp_value(1, 1, 2));
        assert_eq!(l.value_of(c0, 2), 3);
    }

    #[test]
    fn coalition_pools_machines() {
        // Org 0: 1 machine, 2 simultaneous unit jobs; org 1: 1 machine, no
        // jobs. In {0}: serial. In {0,1}: parallel... but {0,1} is the grand
        // coalition, not tracked by full_proper. Use an explicit lattice.
        let both = players(&[0, 1]);
        let mut l = CoalitionLattice::with_coalitions(
            &[1, 1],
            &[players(&[0]), players(&[1]), both],
            Policy::Fair,
        );
        l.release(0, OrgId(0), 1);
        l.release(0, OrgId(0), 1);
        l.settle(2);
        assert_eq!(l.value_of(players(&[0]), 2), 3); // serial: 2 + 1
        assert_eq!(l.value_of(both, 2), 4); // parallel: 2 + 2
        assert_eq!(l.value_of(players(&[1]), 2), 0);
    }

    #[test]
    fn proposition_5_5_values() {
        // The supermodularity counterexample: orgs a, b with 2 unit jobs
        // each at t=0, org c jobless; 1 machine each. Values at t=2.
        let mut l = CoalitionLattice::full_proper(&[1, 1, 1]);
        for _ in 0..2 {
            l.release(0, OrgId(0), 1);
            l.release(0, OrgId(1), 1);
        }
        l.settle(2);
        assert_eq!(l.value_of(players(&[0, 2]), 2), 4);
        assert_eq!(l.value_of(players(&[1, 2]), 2), 4);
        assert_eq!(l.value_of(players(&[2]), 2), 0);
        assert_eq!(l.value_of(players(&[0, 1]), 2), 6);
    }

    #[test]
    fn shapley_of_symmetric_coalition_splits_evenly() {
        // Two identical orgs: each 1 machine, one unit job at t=0.
        let both = players(&[0, 1]);
        let mut l = CoalitionLattice::with_coalitions(
            &[1, 1],
            &[players(&[0]), players(&[1]), both],
            Policy::Fair,
        );
        l.release(0, OrgId(0), 1);
        l.release(0, OrgId(1), 1);
        l.settle(5);
        let phi = l.shapley_for(both, 5, None);
        assert_eq!(phi[0], phi[1]);
        // Efficiency: Σ φ_scaled = v(C) · |C|!.
        let v = l.value_of(both, 5);
        assert_eq!(phi[0] + phi[1], v * 2);
    }

    #[test]
    fn shapley_dummy_org_gets_zero_when_it_adds_nothing() {
        // Org 1 has no machines and no jobs: v(S∪{1}) = v(S) for all S.
        let both = players(&[0, 1]);
        let mut l = CoalitionLattice::with_coalitions(
            &[1, 0],
            &[players(&[0]), players(&[1]), both],
            Policy::Fair,
        );
        l.release(0, OrgId(0), 2);
        l.settle(4);
        let phi = l.shapley_for(both, 4, None);
        assert_eq!(phi[1], 0);
        assert_eq!(phi[0], l.value_of(both, 4) * 2);
    }

    #[test]
    fn jobless_machine_owner_earns_contribution() {
        // Org 1 contributes a machine but no jobs; org 0 has two unit jobs.
        // v({0}) = 3 (serial), v({1}) = 0, v({0,1}) = 4 (parallel) at t=2.
        // φ_scaled(1) = Σ orderings marginal: orderings (0,1): v({0,1})−v({0}) = 1;
        // (1,0): v({1}) − 0 = 0 → φ(1) = (1+0) = 1 (scaled by 2!: 1·1! + ... )
        let both = players(&[0, 1]);
        let mut l = CoalitionLattice::with_coalitions(
            &[1, 1],
            &[players(&[0]), players(&[1]), both],
            Policy::Fair,
        );
        l.release(0, OrgId(0), 1);
        l.release(0, OrgId(0), 1);
        l.settle(2);
        let phi = l.shapley_for(both, 2, None);
        // φ(1)·2! = 1!(v({0,1})−v({0})) + 1!(v({1})−v(∅)) = (4−3) + 0 = 1.
        assert_eq!(phi[1], 1);
        assert_eq!(phi[0], 3 + 4); // 1!(v({0})−0) + 1!(v({0,1})−v({1})) = 3 + 4
    }

    #[test]
    fn fifo_policy_orders_by_release() {
        let c = players(&[0, 1]);
        let mut l = CoalitionLattice::with_coalitions(&[1, 0], &[c], Policy::Fifo);
        // One machine total. Org 1 releases earlier.
        l.release(0, OrgId(1), 3);
        l.release(1, OrgId(0), 3);
        l.settle(10);
        // Org 1's job runs 0..3, org 0's 3..6.
        assert_eq!(l.org_values_of(c, 10)[1], sp_value(0, 3, 10));
        assert_eq!(l.org_values_of(c, 10)[0], sp_value(3, 3, 10));
    }

    #[test]
    fn lazy_advance_processes_intermediate_events() {
        let c = players(&[0]);
        let mut l = CoalitionLattice::with_coalitions(&[1], &[c], Policy::Fifo);
        // Three sequential jobs released at 0; settle only at the end.
        for _ in 0..3 {
            l.release(0, OrgId(0), 2);
        }
        l.settle(100);
        // They must have run back-to-back: starts 0, 2, 4.
        let expected = sp_value(0, 2, 100) + sp_value(2, 2, 100) + sp_value(4, 2, 100);
        assert_eq!(l.value_of(c, 100), expected);
    }

    #[test]
    fn release_after_idle_starts_immediately() {
        let c = players(&[0]);
        let mut l = CoalitionLattice::with_coalitions(&[1], &[c], Policy::Fifo);
        l.release(5, OrgId(0), 1);
        l.settle(10);
        assert_eq!(l.value_of(c, 10), sp_value(5, 1, 10));
    }

    #[test]
    #[should_panic(expected = "subset-closed")]
    fn fair_policy_requires_subset_closure() {
        let _ =
            CoalitionLattice::with_coalitions(&[1, 1], &[players(&[0, 1])], Policy::Fair);
    }

    #[test]
    fn shapley_efficiency_on_lattice() {
        // Random-ish 3-org setup; check Σφ = v(C)·|C|! for the tracked
        // 2-coalitions.
        let mut l = CoalitionLattice::full_proper(&[2, 1, 1]);
        l.release(0, OrgId(0), 3);
        l.release(1, OrgId(1), 2);
        l.release(1, OrgId(2), 4);
        l.release(2, OrgId(0), 1);
        l.settle(20);
        for ids in [[0usize, 1], [0, 2], [1, 2]] {
            let c = players(&ids);
            let phi = l.shapley_for(c, 20, None);
            let total: i128 = phi.iter().sum();
            assert_eq!(total, l.value_of(c, 20) * 2, "efficiency failed for {c:?}");
        }
    }
}
