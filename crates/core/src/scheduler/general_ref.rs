//! REF for **arbitrary** utility functions (Figure 1, literally).
//!
//! [`RefScheduler`](super::RefScheduler) specializes Figure 1 to `ψ_sp`
//! (Figure 3) with exact integer arithmetic. This module implements the
//! general algorithm: it works with any [`Utility`] — flow time, resource
//! share, tardiness, makespan — by maintaining a *materialized schedule*
//! per subcoalition and selecting by the Manhattan-distance rule of
//! Definition 3.1:
//!
//! ```text
//! Distance(C, u, t) = |φ(u) + Δψ/‖C‖ − ψ(u) − Δψ|
//!                   + Σ_{u'≠u} |φ(u') + Δψ/‖C‖ − ψ(u')|
//! ```
//!
//! where `Δψ` is the utility gain of tentatively starting `u`'s head job
//! now. Two conventions, both documented in DESIGN.md §2:
//!
//! * `Δψ` is evaluated **one step ahead** (`t+1`) with one observed unit of
//!   the tentative job — at `t` itself a just-started job has executed
//!   nothing and the literal formula ties across organizations;
//! * running jobs are evaluated by their executed part (the non-clairvoyant
//!   reading: a utility may only depend on work completed by `t`).
//!
//! Minimization objectives (`Utility::maximizing() == false`) are negated
//! internally so that "more is better" uniformly.
//!
//! This implementation favours clarity over speed (it re-evaluates the
//! utility over materialized schedules at every decision); use it as a
//! small-instance reference, exactly how the paper positions REF.

use super::{Scheduler, SelectContext};
use crate::model::{ClusterInfo, JobId, JobMeta, MachineId, OrgId, Time, Trace};
use crate::schedule::{Schedule, ScheduledJob};
use crate::utility::Utility;
use coopgame::{factorial, Coalition, Player};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// A partially materialized hypothetical schedule for one coalition.
#[derive(Clone, Debug)]
struct GenSim {
    coalition: Coalition,
    n_machines: usize,
    busy: usize,
    /// Per-org FIFO queues of (job, release, proc).
    waiting: Vec<VecDeque<(JobId, Time, Time)>>,
    /// Started jobs: (job, org, start, completion).
    started: Vec<(JobId, OrgId, Time, Time)>,
    /// Pending completions (time, index into `started`).
    completions: BinaryHeap<Reverse<(Time, usize)>>,
    /// Recency stamps for tie-breaking.
    stamps: Vec<u64>,
    counter: u64,
}

impl GenSim {
    fn new(coalition: Coalition, n_orgs: usize, n_machines: usize) -> Self {
        GenSim {
            coalition,
            n_machines,
            busy: 0,
            waiting: vec![VecDeque::new(); n_orgs],
            started: Vec::new(),
            completions: BinaryHeap::new(),
            stamps: vec![0; n_orgs],
            counter: 0,
        }
    }

    fn release(&mut self, job: JobId, t: Time, proc: Time, org: OrgId) {
        self.waiting[org.index()].push_back((job, t, proc));
    }

    fn pop_completions_up_to(&mut self, t: Time) {
        while let Some(&Reverse((ct, _))) = self.completions.peek() {
            if ct > t {
                break;
            }
            self.completions.pop();
            self.busy -= 1;
        }
    }

    fn eligible(&self, org: OrgId, t: Time) -> bool {
        self.waiting[org.index()].front().is_some_and(|&(_, r, _)| r <= t)
    }

    fn can_schedule(&self, t: Time) -> bool {
        self.busy < self.n_machines
            && self.coalition.members().any(|p| self.eligible(OrgId(p.0 as u32), t))
    }

    fn start_head(&mut self, org: OrgId, t: Time) {
        let (job, _, proc) = self.waiting[org.index()].pop_front().expect("no head");
        self.busy += 1;
        let idx = self.started.len();
        self.started.push((job, org, t, t + proc));
        self.completions.push(Reverse((t + proc, idx)));
        self.counter += 1;
        self.stamps[org.index()] = self.counter;
    }

    /// Materializes the schedule visible at time `t`: completed jobs keep
    /// their true processing time; running jobs are clipped to their
    /// executed part (non-clairvoyant evaluation). Machine ids are
    /// synthetic (identical machines; utilities may not depend on them).
    fn schedule_at(&self, t: Time) -> Schedule {
        self.started
            .iter()
            .filter(|&&(_, _, s, _)| s <= t)
            .map(|&(job, org, s, c)| ScheduledJob {
                job,
                org,
                machine: MachineId(0),
                start: s,
                proc_time: (c.min(t.max(s + 1)) - s).max(1).min(c - s),
            })
            .collect()
    }

    /// As [`GenSim::schedule_at`] plus a tentative head job of `org`
    /// started at `t` with one observed unit.
    fn schedule_with_tentative(&self, org: OrgId, t: Time) -> Schedule {
        let mut entries: Vec<ScheduledJob> = self.schedule_at(t).entries().to_vec();
        let &(job, _, _) = self.waiting[org.index()].front().expect("no head");
        entries.push(ScheduledJob {
            job,
            org,
            machine: MachineId(0),
            start: t,
            proc_time: 1,
        });
        entries.into_iter().collect()
    }
}

/// REF for an arbitrary utility function (Figure 1).
pub struct GeneralRefScheduler {
    utility: Arc<dyn Utility + Send + Sync>,
    trace: Arc<Trace>,
    sims: Vec<GenSim>,
    index: HashMap<u64, usize>,
    events: BinaryHeap<Reverse<(Time, usize)>>,
    grand: Coalition,
    /// The real schedule, mirrored from engine events (completion times
    /// filled in as they are revealed).
    real: GenSim,
    real_pos: HashMap<JobId, usize>,
    sign: f64,
}

impl GeneralRefScheduler {
    /// Builds the general REF for `trace` under `utility`.
    ///
    /// # Panics
    /// Panics if the trace has more than 12 organizations (each decision
    /// re-evaluates `2^k` materialized schedules).
    pub fn new(trace: &Trace, utility: impl Utility + Send + Sync + 'static) -> Self {
        let k = trace.n_orgs();
        assert!(k <= 12, "general REF supports at most 12 organizations");
        let machines: Vec<usize> = trace.orgs().iter().map(|o| o.n_machines).collect();
        let grand = Coalition::grand(k);
        let mut sims = Vec::new();
        let mut index = HashMap::new();
        for c in grand.proper_subsets() {
            if c.is_empty() {
                continue;
            }
            let m = c.members().map(|p| machines[p.0]).sum();
            index.insert(c.bits(), sims.len());
            sims.push(GenSim::new(c, k, m));
        }
        let sign = if utility.maximizing() { 1.0 } else { -1.0 };
        GeneralRefScheduler {
            utility: Arc::new(utility),
            trace: Arc::new(trace.clone()),
            sims,
            index,
            events: BinaryHeap::new(),
            grand,
            real: GenSim::new(grand, k, machines.iter().sum()),
            real_pos: HashMap::new(),
            sign,
        }
    }

    /// Signed utility of `org` in a schedule (negated for minimization
    /// objectives so larger is uniformly better).
    fn psi(&self, schedule: &Schedule, org: OrgId, t: Time) -> f64 {
        self.sign * self.utility.value(&self.trace, schedule, org, t)
    }

    fn coalition_value(&self, c: Coalition, schedule: &Schedule, t: Time) -> f64 {
        c.members().map(|p| self.psi(schedule, OrgId(p.0 as u32), t)).sum()
    }

    /// Processes all hypothetical-schedule events up to and including `t`,
    /// running the fair scheduling round at each event time.
    fn settle(&mut self, t: Time) {
        while let Some(&Reverse((et, _))) = self.events.peek() {
            if et > t {
                break;
            }
            let mut wake = Vec::new();
            while let Some(&Reverse((e2, i))) = self.events.peek() {
                if e2 > et {
                    break;
                }
                self.events.pop();
                wake.push(i);
            }
            wake.sort_unstable();
            wake.dedup();
            for &i in &wake {
                self.sims[i].pop_completions_up_to(et);
            }
            self.schedule_round(et);
        }
        self.schedule_round(t);
    }

    fn schedule_round(&mut self, t: Time) {
        for i in 0..self.sims.len() {
            while self.sims[i].can_schedule(t) {
                let org = self.pick_for(self.sims[i].coalition, t, None);
                self.sims[i].start_head(org, t);
                let &(_, _, _, completion) = self.sims[i].started.last().unwrap();
                self.events.push(Reverse((completion, i)));
            }
        }
    }

    /// The Figure 1 selection for coalition `c` at `t`. For proper
    /// subcoalitions, `real_override` is `None` and the sim's own state is
    /// used; for the grand coalition the caller passes the engine-mirrored
    /// real schedule sim.
    fn pick_for(&self, c: Coalition, t: Time, real_override: Option<&GenSim>) -> OrgId {
        let sim = match real_override {
            Some(r) => r,
            None => &self.sims[self.index[&c.bits()]],
        };
        let size = c.len();
        // Subcoalition value table (signed), v(∅) = 0.
        let mut values: HashMap<u64, f64> = HashMap::with_capacity(1 << size);
        values.insert(0, 0.0);
        for s in c.subsets() {
            if s.is_empty() {
                continue;
            }
            let v = if s == c {
                self.coalition_value(c, &sim.schedule_at(t), t)
            } else {
                let sub = &self.sims[self.index[&s.bits()]];
                self.coalition_value(s, &sub.schedule_at(t), t)
            };
            values.insert(s.bits(), v);
        }
        // Shapley contributions of the members.
        let n_fact = factorial(size) as f64;
        let mut phi: HashMap<usize, f64> = HashMap::new();
        for p in c.members() {
            let others = c.remove(p);
            let mut acc = 0.0;
            for s in others.subsets() {
                let w =
                    (factorial(s.len()) * factorial(size - s.len() - 1)) as f64 / n_fact;
                acc += w * (values[&s.insert(p).bits()] - values[&s.bits()]);
            }
            phi.insert(p.0, acc);
        }
        let base_psi: HashMap<usize, f64> = c
            .members()
            .map(|p| (p.0, self.psi(&sim.schedule_at(t), OrgId(p.0 as u32), t)))
            .collect();

        // Distance(C, u, t) per Figure 1, with the one-step-ahead marginal.
        let mut best: Option<(f64, u64, u32)> = None; // (distance, stamp, org)
        for p in c.members() {
            let u = OrgId(p.0 as u32);
            if !sim.eligible(u, t) {
                continue;
            }
            let tentative = sim.schedule_with_tentative(u, t);
            let delta =
                self.psi(&tentative, u, t + 1) - self.psi(&sim.schedule_at(t), u, t + 1);
            let share = delta / size as f64;
            let mut dist = (phi[&p.0] + share - base_psi[&p.0] - delta).abs();
            for q in c.members() {
                if q != p {
                    dist += (phi[&q.0] + share - base_psi[&q.0]).abs();
                }
            }
            let key = (dist, sim.stamps[p.0], u.0);
            let better = match &best {
                None => true,
                Some((bd, bs, bo)) => {
                    dist < *bd - 1e-12
                        || ((dist - *bd).abs() <= 1e-12
                            && (sim.stamps[p.0], u.0) < (*bs, *bo))
                }
            };
            if better {
                best = Some(key);
            }
        }
        OrgId(best.expect("pick_for with nothing eligible").2)
    }
}

impl Scheduler for GeneralRefScheduler {
    fn name(&self) -> String {
        format!("GeneralRef({})", self.utility.name())
    }

    fn init(&mut self, info: &ClusterInfo) {
        assert_eq!(
            info.n_orgs(),
            self.trace.n_orgs(),
            "general REF was built for a different trace"
        );
    }

    fn admits_jobs(&self) -> bool {
        // The general REF holds an `Arc` of the trace it was built from
        // and re-reads it on every release; splicing a shared snapshot is
        // not possible, and the 2^k materialized sub-schedules make it a
        // benchmark tool, not a serving scheduler. Decline, so sessions
        // surface a typed error instead of desynchronizing.
        false
    }

    fn on_release(&mut self, t: Time, job: &JobMeta) {
        let proc = self.trace.job(job.id).proc_time;
        self.settle(t);
        let player = Player(job.org.index());
        for i in 0..self.sims.len() {
            if self.sims[i].coalition.contains(player) {
                self.sims[i].release(job.id, t, proc, job.org);
                self.events.push(Reverse((t, i)));
            }
        }
        // Mirror into the real-coalition queue.
        self.real.release(job.id, t, proc, job.org);
    }

    fn on_start(&mut self, t: Time, job: &JobMeta, _machine: MachineId) {
        // The engine starts the FIFO head; mirror it. Completion time is a
        // placeholder until revealed (treated as running).
        let (jid, _, _) = self.real.waiting[job.org.index()]
            .pop_front()
            .expect("start without release");
        debug_assert_eq!(jid, job.id);
        let idx = self.real.started.len();
        self.real.started.push((job.id, job.org, t, Time::MAX));
        self.real_pos.insert(job.id, idx);
        self.real.counter += 1;
        self.real.stamps[job.org.index()] = self.real.counter;
    }

    fn on_complete(&mut self, t: Time, job: &JobMeta, _machine: MachineId, _start: Time) {
        let idx = self.real_pos[&job.id];
        self.real.started[idx].3 = t;
    }

    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
        self.settle(ctx.t);
        // Clip the real sim's running jobs at ctx.t for evaluation: done
        // inside schedule_at via the completion min.
        let real = clip_real(&self.real, ctx.t);
        self.pick_for(self.grand, ctx.t, Some(&real))
    }
}

/// A copy of the real sim whose unrevealed completions are clipped at `t`
/// (running jobs count only their executed part).
fn clip_real(real: &GenSim, t: Time) -> GenSim {
    let mut r = real.clone();
    for entry in &mut r.started {
        if entry.3 == Time::MAX {
            entry.3 = t.max(entry.2 + 1);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::{FlowTime, SpUtility};

    fn two_org_trace() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 2).job(c, 0, 2).job(a, 1, 3).job(c, 2, 1);
        b.build().unwrap()
    }

    fn meta(trace: &Trace, id: u32) -> JobMeta {
        trace.job(JobId(id)).meta()
    }

    #[test]
    fn general_ref_with_sp_selects_like_specialized_on_symmetric_case() {
        let trace = two_org_trace();
        let mut g = GeneralRefScheduler::new(&trace, SpUtility);
        g.init(&trace.cluster_info());
        g.on_release(0, &meta(&trace, 0));
        g.on_release(0, &meta(&trace, 1));
        let w = [1usize, 1];
        let ctx = SelectContext { t: 0, waiting: &w, free_machines: &[] };
        let first = g.select(&ctx);
        g.on_start(0, &meta(&trace, first.0), MachineId(0));
        let w2: [usize; 2] = if first.0 == 0 { [0, 1] } else { [1, 0] };
        let ctx2 = SelectContext { t: 0, waiting: &w2, free_machines: &[] };
        let second = g.select(&ctx2);
        assert_ne!(first, second, "symmetric orgs must alternate");
    }

    #[test]
    fn general_ref_runs_under_engine_with_flow_time() {
        // Driven through a manual event replay to avoid a sim dependency:
        // just verify select() returns waiting orgs and never panics while
        // we feed a plausible event stream.
        let trace = two_org_trace();
        let mut g = GeneralRefScheduler::new(&trace, FlowTime);
        g.init(&trace.cluster_info());
        g.on_release(0, &meta(&trace, 0));
        g.on_release(0, &meta(&trace, 1));
        let w = [1usize, 1];
        let ctx = SelectContext { t: 0, waiting: &w, free_machines: &[] };
        let pick = g.select(&ctx);
        assert!(pick.0 < 2);
        g.on_start(0, &meta(&trace, pick.0), MachineId(0));
        let other = OrgId(1 - pick.0);
        let w2: [usize; 2] = if pick.0 == 0 { [0, 1] } else { [1, 0] };
        let ctx2 = SelectContext { t: 0, waiting: &w2, free_machines: &[] };
        assert_eq!(g.select(&ctx2), other);
    }

    #[test]
    fn name_reports_utility() {
        let trace = two_org_trace();
        let g = GeneralRefScheduler::new(&trace, FlowTime);
        assert_eq!(g.name(), "GeneralRef(flow_time)");
    }

    #[test]
    #[should_panic(expected = "at most 12")]
    fn rejects_too_many_orgs() {
        let mut b = Trace::builder();
        for i in 0..13 {
            let o = b.org(format!("o{i}"), 1);
            b.job(o, 0, 1);
        }
        let trace = b.build().unwrap();
        let _ = GeneralRefScheduler::new(&trace, SpUtility);
    }
}
