//! FIFO and uniformly-random baselines (not in the paper's evaluation, but
//! useful greedy reference points).

use super::{Scheduler, SelectContext};
use crate::model::{ClusterInfo, JobMeta, OrgId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Global first-in-first-out: the organization whose oldest waiting job was
/// released earliest goes next (ties by arrival order). This is the classic
/// single-queue cluster policy, oblivious to both fairness and ownership.
#[derive(Clone, Debug, Default)]
pub struct FifoScheduler {
    /// Per-org queue of (release, arrival sequence) of waiting jobs.
    queues: Vec<VecDeque<(Time, u64)>>,
    seq: u64,
}

impl FifoScheduler {
    /// A fresh FIFO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> String {
        "Fifo".into()
    }

    fn init(&mut self, info: &ClusterInfo) {
        self.queues = vec![VecDeque::new(); info.n_orgs()];
        self.seq = 0;
    }

    fn on_release(&mut self, _t: Time, job: &JobMeta) {
        self.seq += 1;
        self.queues[job.org.index()].push_back((job.release, self.seq));
    }

    fn on_start(&mut self, _t: Time, job: &JobMeta, _machine: crate::model::MachineId) {
        self.queues[job.org.index()].pop_front().expect("start without matching release");
    }

    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
        ctx.waiting_orgs()
            .min_by_key(|u| {
                self.queues[u.index()]
                    .front()
                    .copied()
                    .expect("waiting count disagrees with queue")
            })
            .expect("select called with no waiting jobs")
    }
}

/// Starts the job of a uniformly random organization among those waiting.
/// A stochastic baseline for fairness comparisons.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// A random scheduler with the given seed (deterministic per seed).
    pub fn new(seed: u64) -> Self {
        RandomScheduler { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> String {
        "Random".into()
    }

    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
        let candidates: Vec<OrgId> = ctx.waiting_orgs().collect();
        assert!(!candidates.is_empty(), "select called with no waiting jobs");
        candidates[self.rng.random_range(0..candidates.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::JobId;

    fn meta(id: u32, org: u32, release: Time) -> JobMeta {
        JobMeta { id: JobId(id), org: OrgId(org), release }
    }

    #[test]
    fn fifo_prefers_earliest_release() {
        let mut s = FifoScheduler::new();
        s.init(&ClusterInfo::new(vec![1, 1]));
        s.on_release(5, &meta(0, 1, 5));
        s.on_release(7, &meta(1, 0, 7));
        let w = [1usize, 1];
        let ctx = SelectContext { t: 7, waiting: &w, free_machines: &[] };
        assert_eq!(s.select(&ctx), OrgId(1));
    }

    #[test]
    fn fifo_ties_broken_by_arrival() {
        let mut s = FifoScheduler::new();
        s.init(&ClusterInfo::new(vec![1, 1]));
        s.on_release(5, &meta(0, 1, 5));
        s.on_release(5, &meta(1, 0, 5));
        let w = [1usize, 1];
        let ctx = SelectContext { t: 5, waiting: &w, free_machines: &[] };
        assert_eq!(s.select(&ctx), OrgId(1)); // arrived first
    }

    #[test]
    fn fifo_pops_on_start() {
        let mut s = FifoScheduler::new();
        s.init(&ClusterInfo::new(vec![1, 1]));
        s.on_release(0, &meta(0, 0, 0));
        s.on_release(1, &meta(1, 1, 1));
        s.on_start(1, &meta(0, 0, 0), crate::model::MachineId(0));
        let w = [0usize, 1];
        let ctx = SelectContext { t: 1, waiting: &w, free_machines: &[] };
        assert_eq!(s.select(&ctx), OrgId(1));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let w = [1usize, 1, 1, 1];
        let picks = |seed| {
            let mut s = RandomScheduler::new(seed);
            let ctx = SelectContext { t: 0, waiting: &w, free_machines: &[] };
            (0..20).map(|_| s.select(&ctx).0).collect::<Vec<_>>()
        };
        assert_eq!(picks(1), picks(1));
    }

    #[test]
    fn random_only_picks_waiting() {
        let mut s = RandomScheduler::new(3);
        let w = [0usize, 1, 0];
        let ctx = SelectContext { t: 0, waiting: &w, free_machines: &[] };
        for _ in 0..10 {
            assert_eq!(s.select(&ctx), OrgId(1));
        }
    }
}
