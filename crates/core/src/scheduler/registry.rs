//! The scheduler registry: one construction path for every algorithm.
//!
//! Historically every scheduler had a bespoke constructor
//! (`RefScheduler::new(&trace)`, `RandScheduler::new(&trace, n, seed)`,
//! `DirectContrScheduler::new(seed)`, …) and every consumer — the bench
//! runner, the CLI, tests, examples — hard-coded its own list. This module
//! replaces those call sites with three pieces:
//!
//! * [`SchedulerSpec`] — a parsed, canonical description of a scheduler
//!   configuration, written as a string such as `"ref"`,
//!   `"rand:perms=15"` or `"general-ref:util=flowtime"`. Specs implement
//!   [`FromStr`]/[`Display`] (round-tripping exactly) and, with the
//!   `serde` feature, serialize as that same string.
//! * [`SchedulerFactory`] — an object-safe builder turning a spec plus a
//!   [`BuildContext`] (trace + seed) into a boxed [`Scheduler`]. The
//!   context unifies trace-dependent construction (REF, RAND) and
//!   seed-dependent construction (RAND, DIRECTCONTR, RANDOM) behind one
//!   signature.
//! * [`Registry`] — a name → factory map. [`Registry::default`] knows
//!   every algorithm in the paper's Table 1/2 set plus the baselines;
//!   [`Registry::register`] lets downstream crates add policies without
//!   touching this crate.
//!
//! ```
//! use fairsched_core::scheduler::registry::{BuildContext, Registry, SchedulerSpec};
//! use fairsched_core::Trace;
//!
//! let mut b = Trace::builder();
//! let org = b.org("solo", 1);
//! b.job(org, 0, 3);
//! let trace = b.build().unwrap();
//!
//! let registry = Registry::default();
//! let spec: SchedulerSpec = "rand:perms=10".parse().unwrap();
//! let mut scheduler = registry.build(&spec, &BuildContext { trace: &trace, seed: 7 }).unwrap();
//! assert_eq!(scheduler.name(), "Rand(N=10)");
//! assert_eq!(spec.to_string(), "rand:perms=10");
//! ```

use super::{
    CurrFairShareScheduler, DirectContrScheduler, FairShareScheduler, FifoScheduler,
    GeneralRefScheduler, RandScheduler, RandomScheduler, RefScheduler,
    RoundRobinScheduler, Scheduler, UtFairShareScheduler,
};
use crate::model::Trace;
use crate::spec::{valid_ident, ParamError, SpecBody, SpecParseError};
use crate::utility::{FlowTime, Makespan, ResourceShare, SpUtility, Tardiness};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Why a spec string or a build from a spec was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The spec string was empty.
    Empty,
    /// The spec string does not follow `name[:key=value,...]`.
    BadSyntax {
        /// The offending input.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// No factory is registered under the requested name.
    UnknownScheduler {
        /// The requested name.
        name: String,
        /// Registered names, sorted.
        known: Vec<String>,
    },
    /// The named scheduler does not accept this parameter.
    UnknownParam {
        /// The scheduler name.
        scheduler: String,
        /// The rejected parameter key.
        param: String,
        /// Keys the scheduler accepts.
        accepted: Vec<String>,
    },
    /// A parameter value failed to parse or violated a constraint.
    BadParam {
        /// The scheduler name.
        scheduler: String,
        /// The parameter key.
        param: String,
        /// What was wrong with the value.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty scheduler spec"),
            SpecError::BadSyntax { spec, reason } => {
                write!(f, "malformed scheduler spec {spec:?}: {reason}")
            }
            SpecError::UnknownScheduler { name, known } => {
                write!(f, "unknown scheduler {name:?} (known: {})", known.join(", "))
            }
            SpecError::UnknownParam { scheduler, param, accepted } => {
                if accepted.is_empty() {
                    write!(
                        f,
                        "scheduler {scheduler:?} takes no parameters, got {param:?}"
                    )
                } else {
                    write!(
                        f,
                        "scheduler {scheduler:?} does not accept {param:?} (accepted: {})",
                        accepted.join(", ")
                    )
                }
            }
            SpecError::BadParam { scheduler, param, reason } => {
                write!(f, "bad value for {scheduler}:{param}: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A parsed scheduler configuration: a registry name plus string
/// parameters, with a canonical textual form.
///
/// The grammar — `name` or `name:key=value,key=value`, sorted parameters,
/// canonical `Display`, `FromStr` ∘ `Display` the identity on canonical
/// strings — is the shared [`crate::spec`] grammar, the same one workload
/// specs use; this type wraps [`SpecBody`] with scheduler-worded errors.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SchedulerSpec {
    body: SpecBody,
}

impl SchedulerSpec {
    /// A parameterless spec.
    pub fn bare(name: impl Into<String>) -> Self {
        SchedulerSpec { body: SpecBody::bare(name) }
    }

    /// Adds or replaces a parameter (builder style). Values containing
    /// the structural characters `%`/`,`/`=` are percent-escaped on
    /// render, so the `Display`/`FromStr` (and serde) round trip holds
    /// for any non-empty value.
    ///
    /// # Panics
    /// Panics if the key is not a lowercase identifier or the rendered
    /// value is empty.
    pub fn with(self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        SchedulerSpec { body: self.body.with(key, value) }
    }

    /// The registry name this spec selects.
    pub fn name(&self) -> &str {
        self.body.name()
    }

    /// All parameters, sorted by key.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.body.params()
    }

    /// A raw parameter value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.body.get(key)
    }

    fn lift(&self, e: ParamError) -> SpecError {
        match e {
            ParamError::Unknown { param, accepted } => SpecError::UnknownParam {
                scheduler: self.name().to_string(),
                param,
                accepted,
            },
            ParamError::Bad { param, reason } => {
                SpecError::BadParam { scheduler: self.name().to_string(), param, reason }
            }
        }
    }

    /// Rejects parameters outside `accepted` (factories call this first so
    /// typos fail loudly instead of silently using defaults).
    pub fn deny_unknown_params(&self, accepted: &[&str]) -> Result<(), SpecError> {
        self.body.deny_unknown_params(accepted).map_err(|e| self.lift(e))
    }

    /// A typed parameter with a default.
    pub fn parsed<T: FromStr>(&self, key: &str, default: T) -> Result<T, SpecError> {
        self.body.parsed(key, default).map_err(|e| self.lift(e))
    }

    /// A helper for range/constraint violations discovered by factories.
    pub fn bad_param(&self, key: &str, reason: impl Into<String>) -> SpecError {
        SpecError::BadParam {
            scheduler: self.name().to_string(),
            param: key.to_string(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.body.fmt(f)
    }
}

impl FromStr for SchedulerSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        match s.parse::<SpecBody>() {
            Ok(body) => Ok(SchedulerSpec { body }),
            Err(SpecParseError::Empty) => Err(SpecError::Empty),
            Err(SpecParseError::BadSyntax { spec, reason }) => {
                Err(SpecError::BadSyntax { spec, reason })
            }
        }
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for SchedulerSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for SchedulerSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::String(s) => {
                s.parse().map_err(|e: SpecError| serde::DeError(e.to_string()))
            }
            _ => Err(serde::DeError::expected("string", "SchedulerSpec")),
        }
    }
}

/// Everything a factory may need to instantiate a scheduler: the trace
/// (REF and RAND precompute coalition lattices from it) and a seed
/// (driving any internal randomness deterministically).
#[derive(Copy, Clone, Debug)]
pub struct BuildContext<'a> {
    /// The trace the scheduler will be run against.
    pub trace: &'a Trace,
    /// Seed for any internal randomness.
    pub seed: u64,
}

/// An object-safe scheduler builder, registered under a unique name.
pub trait SchedulerFactory: Send + Sync {
    /// The registry name (what spec strings select).
    fn name(&self) -> &str;

    /// One-line human description, shown in CLI help.
    fn summary(&self) -> &str;

    /// Parameter keys this factory accepts (for error messages and docs).
    fn accepted_params(&self) -> &[&str] {
        &[]
    }

    /// Instantiates the scheduler for a spec in a context.
    ///
    /// Implementations should reject parameters outside
    /// [`accepted_params`](SchedulerFactory::accepted_params) via
    /// [`SchedulerSpec::deny_unknown_params`].
    fn build(
        &self,
        spec: &SchedulerSpec,
        ctx: &BuildContext<'_>,
    ) -> Result<Box<dyn Scheduler>, SpecError>;
}

/// A closure-backed [`SchedulerFactory`] (how all built-ins are defined).
struct FnFactory<F> {
    name: &'static str,
    summary: &'static str,
    accepted: &'static [&'static str],
    build: F,
}

impl<F> SchedulerFactory for FnFactory<F>
where
    F: Fn(&SchedulerSpec, &BuildContext<'_>) -> Result<Box<dyn Scheduler>, SpecError>
        + Send
        + Sync,
{
    fn name(&self) -> &str {
        self.name
    }

    fn summary(&self) -> &str {
        self.summary
    }

    fn accepted_params(&self) -> &[&str] {
        self.accepted
    }

    fn build(
        &self,
        spec: &SchedulerSpec,
        ctx: &BuildContext<'_>,
    ) -> Result<Box<dyn Scheduler>, SpecError> {
        spec.deny_unknown_params(self.accepted)?;
        (self.build)(spec, ctx)
    }
}

/// The name → factory map behind every scheduler construction in the
/// workspace.
///
/// [`Registry::default`] pre-populates the paper's full algorithm set;
/// use [`Registry::new`] + [`Registry::register`] for a curated set, or
/// `register` on a default registry to add downstream policies.
pub struct Registry {
    factories: BTreeMap<String, Box<dyn SchedulerFactory>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry { factories: BTreeMap::new() }
    }

    /// The process-wide default registry, built once on first use
    /// (factories are `Send + Sync`, so the instance is freely shared
    /// across threads — `Simulation` sessions and the bench runners all
    /// resolve through it instead of rebuilding [`Registry::default`] per
    /// call).
    pub fn shared() -> &'static Registry {
        static SHARED: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
        SHARED.get_or_init(Registry::default)
    }

    /// Registers a factory, replacing any previous one of the same name
    /// (last registration wins, so downstream crates can override
    /// built-ins) and returning the replaced factory if any.
    pub fn register(
        &mut self,
        factory: Box<dyn SchedulerFactory>,
    ) -> Option<Box<dyn SchedulerFactory>> {
        let name = factory.name().to_string();
        debug_assert!(valid_ident(&name), "invalid factory name {name:?}");
        self.factories.insert(name, factory)
    }

    /// The factory registered under `name`.
    pub fn get(&self, name: &str) -> Option<&dyn SchedulerFactory> {
        self.factories.get(name).map(Box::as_ref)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    /// One canonical parameterless spec per registered factory, sorted by
    /// name (what `run_matrix`-style sweeps and the round-trip tests use).
    pub fn default_specs(&self) -> Vec<SchedulerSpec> {
        self.factories.keys().map(SchedulerSpec::bare).collect()
    }

    /// Builds a scheduler from a parsed spec.
    pub fn build(
        &self,
        spec: &SchedulerSpec,
        ctx: &BuildContext<'_>,
    ) -> Result<Box<dyn Scheduler>, SpecError> {
        let factory = self.factories.get(spec.name()).ok_or_else(|| {
            SpecError::UnknownScheduler {
                name: spec.name().to_string(),
                known: self.names().map(str::to_string).collect(),
            }
        })?;
        factory.build(spec, ctx)
    }

    /// Parses and builds in one step.
    pub fn build_str(
        &self,
        spec: &str,
        ctx: &BuildContext<'_>,
    ) -> Result<Box<dyn Scheduler>, SpecError> {
        self.build(&spec.parse()?, ctx)
    }

    /// A help listing: one `name — summary [params]` line per factory.
    pub fn help(&self) -> String {
        let mut out = String::new();
        for f in self.factories.values() {
            out.push_str(&format!("  {:<14} {}", f.name(), f.summary()));
            if !f.accepted_params().is_empty() {
                out.push_str(&format!(" (params: {})", f.accepted_params().join(", ")));
            }
            out.push('\n');
        }
        out
    }

    fn register_fn<F>(
        &mut self,
        name: &'static str,
        summary: &'static str,
        accepted: &'static [&'static str],
        build: F,
    ) where
        F: Fn(&SchedulerSpec, &BuildContext<'_>) -> Result<Box<dyn Scheduler>, SpecError>
            + Send
            + Sync
            + 'static,
    {
        self.register(Box::new(FnFactory { name, summary, accepted, build }));
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for Registry {
    /// A registry with the paper's whole algorithm set (Section 7.1) plus
    /// the extra baselines:
    ///
    /// | spec | scheduler | parameters |
    /// |---|---|---|
    /// | `ref` | [`RefScheduler`] | — |
    /// | `general-ref` | [`GeneralRefScheduler`] | `util` = `sp` \| `flowtime` \| `makespan` \| `share` \| `tardiness` |
    /// | `rand` | [`RandScheduler`] | `perms` (default 15), or `eps` + `lambda` for the Theorem 5.6 sizing |
    /// | `directcontr` | [`DirectContrScheduler`] | — |
    /// | `fairshare` | [`FairShareScheduler`] | — |
    /// | `utfairshare` | [`UtFairShareScheduler`] | — |
    /// | `currfairshare` | [`CurrFairShareScheduler`] | — |
    /// | `roundrobin` | [`RoundRobinScheduler`] | — |
    /// | `fifo` | [`FifoScheduler`] | — |
    /// | `random` | [`RandomScheduler`] | — |
    fn default() -> Self {
        let mut r = Registry::new();
        r.register_fn(
            "ref",
            "exact Shapley reference (exponential in the number of organizations)",
            &[],
            |_, ctx| Ok(Box::new(RefScheduler::new(ctx.trace))),
        );
        r.register_fn(
            "general-ref",
            "REF generalized to a pluggable utility function",
            &["util"],
            |spec, ctx| {
                let util = spec.get("util").unwrap_or("sp");
                Ok(match util {
                    "sp" => Box::new(GeneralRefScheduler::new(ctx.trace, SpUtility)),
                    "flowtime" => Box::new(GeneralRefScheduler::new(ctx.trace, FlowTime)),
                    "makespan" => Box::new(GeneralRefScheduler::new(ctx.trace, Makespan)),
                    "share" => Box::new(GeneralRefScheduler::new(ctx.trace, ResourceShare)),
                    "tardiness" => Box::new(GeneralRefScheduler::new(ctx.trace, Tardiness)),
                    other => {
                        return Err(spec.bad_param(
                            "util",
                            format!(
                                "unknown utility {other:?} (one of: sp, flowtime, makespan, share, tardiness)"
                            ),
                        ))
                    }
                })
            },
        );
        r.register_fn(
            "rand",
            "randomized Shapley sampling (the paper's RAND / FPRAS)",
            &["perms", "eps", "lambda"],
            |spec, ctx| {
                if spec.get("eps").is_some() || spec.get("lambda").is_some() {
                    if spec.get("perms").is_some() {
                        return Err(spec.bad_param(
                            "perms",
                            "give either perms or eps+lambda, not both",
                        ));
                    }
                    // Guarantee mode is the *pair*: a lone eps or lambda
                    // would silently replace the perms default with a
                    // Hoeffding-derived budget.
                    match (spec.get("eps"), spec.get("lambda")) {
                        (Some(_), None) => {
                            return Err(
                                spec.bad_param("eps", "guarantee mode also needs lambda")
                            )
                        }
                        (None, Some(_)) => {
                            return Err(
                                spec.bad_param("lambda", "guarantee mode also needs eps")
                            )
                        }
                        _ => {}
                    }
                    let eps = spec.parsed("eps", 1.0f64)?;
                    let lambda = spec.parsed("lambda", 0.9f64)?;
                    if eps <= 0.0 {
                        return Err(spec.bad_param("eps", "must be positive"));
                    }
                    if !(lambda > 0.0 && lambda < 1.0) {
                        return Err(spec.bad_param("lambda", "must be in (0, 1)"));
                    }
                    return Ok(Box::new(RandScheduler::with_guarantee(
                        ctx.trace, eps, lambda, ctx.seed,
                    )));
                }
                let perms = spec.parsed("perms", 15usize)?;
                if perms == 0 {
                    return Err(spec.bad_param("perms", "need at least one permutation"));
                }
                Ok(Box::new(RandScheduler::new(ctx.trace, perms, ctx.seed)))
            },
        );
        r.register_fn(
            "directcontr",
            "direct-contribution heuristic (Figure 9)",
            &[],
            |_, ctx| Ok(Box::new(DirectContrScheduler::new(ctx.seed))),
        );
        r.register_fn(
            "fairshare",
            "usage/share balancing (classic fair share)",
            &[],
            |_, _| Ok(Box::new(FairShareScheduler::new())),
        );
        r.register_fn("utfairshare", "utility/share balancing", &[], |_, _| {
            Ok(Box::new(UtFairShareScheduler::new()))
        });
        r.register_fn("currfairshare", "running-jobs/share balancing", &[], |_, _| {
            Ok(Box::new(CurrFairShareScheduler::new()))
        });
        r.register_fn(
            "roundrobin",
            "cycle through organizations with waiting jobs",
            &[],
            |_, _| Ok(Box::new(RoundRobinScheduler::new())),
        );
        r.register_fn("fifo", "global first-in-first-out baseline", &[], |_, _| {
            Ok(Box::new(FifoScheduler::new()))
        });
        r.register_fn(
            "random",
            "uniformly random organization baseline",
            &[],
            |_, ctx| Ok(Box::new(RandomScheduler::new(ctx.seed))),
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 2).job(c, 0, 1).job(a, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn parses_bare_and_parameterized() {
        let s: SchedulerSpec = "ref".parse().unwrap();
        assert_eq!(s.name(), "ref");
        assert_eq!(s.params().count(), 0);

        let s: SchedulerSpec = "rand:perms=15".parse().unwrap();
        assert_eq!(s.name(), "rand");
        assert_eq!(s.get("perms"), Some("15"));

        let s: SchedulerSpec = "general-ref:util=flowtime".parse().unwrap();
        assert_eq!(s.get("util"), Some("flowtime"));
    }

    #[test]
    fn display_is_canonical_and_round_trips() {
        for text in
            ["ref", "rand:perms=75", "rand:eps=0.5,lambda=0.9", "general-ref:util=sp"]
        {
            let spec: SchedulerSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            let again: SchedulerSpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
        // Parameters are sorted into canonical order.
        let spec: SchedulerSpec = "rand:lambda=0.9,eps=0.5".parse().unwrap();
        assert_eq!(spec.to_string(), "rand:eps=0.5,lambda=0.9");
    }

    #[test]
    fn reserved_value_characters_round_trip_escaped() {
        let spec = SchedulerSpec::bare("x").with("k", "a,b=1");
        assert_eq!(spec.to_string(), "x:k=a%2cb%3d1");
        let back: SchedulerSpec = spec.to_string().parse().unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.get("k"), Some("a,b=1"));
    }

    #[test]
    #[should_panic(expected = "invalid spec param key")]
    fn with_rejects_bad_keys() {
        let _ = SchedulerSpec::bare("x").with("K!", 1);
    }

    #[test]
    fn rejects_malformed_specs() {
        for text in [
            "",
            "  ",
            "Ref",
            "rand:",
            "rand:perms",
            "rand:perms=",
            "a b",
            "rand:p=1,p=2",
            "rand:=1",
        ] {
            let r: Result<SchedulerSpec, _> = text.parse();
            assert!(r.is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn default_registry_builds_every_scheduler() {
        let trace = tiny_trace();
        let registry = Registry::default();
        let ctx = BuildContext { trace: &trace, seed: 3 };
        let mut names = Vec::new();
        for spec in registry.default_specs() {
            let s = registry
                .build(&spec, &ctx)
                .unwrap_or_else(|e| panic!("default spec {spec} failed to build: {e}"));
            names.push(s.name());
        }
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn shared_registry_is_built_once_and_complete() {
        let a = Registry::shared();
        let b = Registry::shared();
        assert!(std::ptr::eq(a, b), "shared() must return one instance");
        // Same factory set as a fresh default.
        let fresh = Registry::default();
        assert_eq!(a.names().collect::<Vec<_>>(), fresh.names().collect::<Vec<_>>());
    }

    #[test]
    fn unknown_scheduler_is_typed_error() {
        let trace = tiny_trace();
        let registry = Registry::default();
        let err = match registry
            .build_str("nonesuch", &BuildContext { trace: &trace, seed: 0 })
        {
            Err(e) => e,
            Ok(_) => panic!("nonesuch must not build"),
        };
        match err {
            SpecError::UnknownScheduler { name, known } => {
                assert_eq!(name, "nonesuch");
                assert!(known.contains(&"ref".to_string()));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn unknown_and_bad_params_are_typed_errors() {
        let trace = tiny_trace();
        let registry = Registry::default();
        let ctx = BuildContext { trace: &trace, seed: 0 };
        assert!(matches!(
            registry.build_str("ref:bogus=1", &ctx),
            Err(SpecError::UnknownParam { .. })
        ));
        assert!(matches!(
            registry.build_str("rand:perms=zero", &ctx),
            Err(SpecError::BadParam { .. })
        ));
        assert!(matches!(
            registry.build_str("rand:perms=0", &ctx),
            Err(SpecError::BadParam { .. })
        ));
        assert!(matches!(
            registry.build_str("rand:perms=5,eps=0.1", &ctx),
            Err(SpecError::BadParam { .. })
        ));
        // Guarantee mode requires the eps+lambda pair; a lone key must
        // error instead of silently re-deriving the sampling budget.
        assert!(matches!(
            registry.build_str("rand:eps=0.5", &ctx),
            Err(SpecError::BadParam { .. })
        ));
        assert!(matches!(
            registry.build_str("rand:lambda=0.99", &ctx),
            Err(SpecError::BadParam { .. })
        ));
        assert!(matches!(
            registry.build_str("general-ref:util=nope", &ctx),
            Err(SpecError::BadParam { .. })
        ));
    }

    #[test]
    fn rand_guarantee_spec_uses_hoeffding() {
        let trace = tiny_trace();
        let registry = Registry::default();
        let ctx = BuildContext { trace: &trace, seed: 1 };
        let built = registry.build_str("rand:eps=1.0,lambda=0.5", &ctx).unwrap();
        let n = coopgame::sampling::hoeffding_permutations(2, 1.0, 0.5);
        assert_eq!(built.name(), format!("Rand(N={n})"));
    }

    #[test]
    fn registration_extends_and_overrides() {
        struct Custom;
        impl SchedulerFactory for Custom {
            fn name(&self) -> &str {
                "custom"
            }
            fn summary(&self) -> &str {
                "test-only"
            }
            fn build(
                &self,
                _spec: &SchedulerSpec,
                _ctx: &BuildContext<'_>,
            ) -> Result<Box<dyn Scheduler>, SpecError> {
                Ok(Box::new(FifoScheduler::new()))
            }
        }
        let mut registry = Registry::default();
        assert!(registry.register(Box::new(Custom)).is_none());
        assert!(registry.get("custom").is_some());
        let trace = tiny_trace();
        let built = registry
            .build_str("custom", &BuildContext { trace: &trace, seed: 0 })
            .unwrap();
        assert_eq!(built.name(), "Fifo");
        // Same-name registration replaces (and hands back) the old factory.
        assert!(registry.register(Box::new(Custom)).is_some());
    }

    #[test]
    fn seed_flows_into_randomized_schedulers() {
        let trace = tiny_trace();
        let registry = Registry::default();
        let a = registry
            .build_str("rand:perms=6", &BuildContext { trace: &trace, seed: 9 })
            .unwrap();
        let b = registry
            .build_str("rand:perms=6", &BuildContext { trace: &trace, seed: 9 })
            .unwrap();
        assert_eq!(a.name(), b.name());
    }

    #[test]
    fn help_mentions_every_name() {
        let registry = Registry::default();
        let help = registry.help();
        for name in registry.names() {
            assert!(help.contains(name), "help is missing {name}");
        }
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trip_is_the_spec_string() {
        use serde::{Deserialize, Serialize};
        let spec: SchedulerSpec = "rand:perms=15".parse().unwrap();
        let v = spec.to_value();
        assert_eq!(v, serde::Value::String("rand:perms=15".into()));
        let back = SchedulerSpec::from_value(&v).unwrap();
        assert_eq!(back, spec);
        assert!(SchedulerSpec::from_value(&serde::Value::Number("3".into())).is_err());
    }
}
