//! Online, non-clairvoyant schedulers.
//!
//! Every scheduler implements [`Scheduler`] and is driven by an engine
//! (`fairsched-sim`): the engine delivers release/start/completion events
//! and, whenever a machine is free and jobs wait, asks the scheduler to
//! *select the organization whose FIFO-head job starts next* — the exact
//! decision interface of the paper's online scheduling algorithm
//! `A : J × T → O` (Section 2). The greedy requirement is enforced by the
//! engine: `select` **must** return an organization with waiting jobs.
//!
//! Implemented algorithms (Section 7.1), with the [`registry`] spec string
//! that constructs each (see [`registry::Registry`]):
//!
//! | spec | scheduler | paper name | complexity |
//! |---|---|---|---|
//! | `ref` | [`RefScheduler`] | REF (Figures 1 & 3) | exponential in `k` (FPT) |
//! | `general-ref:util=…` | [`GeneralRefScheduler`] | REF for any utility | exponential in `k` |
//! | `rand:perms=N` | [`RandScheduler`] | RAND (Figure 6) | polynomial, FPRAS for unit jobs |
//! | `directcontr` | [`DirectContrScheduler`] | DIRECTCONTR (Figure 9) | polynomial |
//! | `fairshare` | [`FairShareScheduler`] | FAIRSHARE | polynomial |
//! | `utfairshare` | [`UtFairShareScheduler`] | UTFAIRSHARE | polynomial |
//! | `currfairshare` | [`CurrFairShareScheduler`] | CURRFAIRSHARE | polynomial |
//! | `roundrobin` | [`RoundRobinScheduler`] | ROUNDROBIN | polynomial |
//! | `fifo`, `random` | [`FifoScheduler`], [`RandomScheduler`] | extra baselines | polynomial |
//!
//! Construction goes through the registry rather than the concrete
//! constructors: `Registry::default().build_str("rand:perms=15", &ctx)`
//! yields a boxed scheduler for any spec, and downstream crates can
//! [`registry::Registry::register`] their own policies so the CLI, bench
//! tables, and `Simulation` sessions pick them up with zero changes here.

mod direct_contr;
mod fair_share;
mod fifo;
mod general_ref;
pub mod lattice;
mod rand_shapley;
mod ref_exact;
pub mod registry;
mod round_robin;

pub use direct_contr::DirectContrScheduler;
pub use fair_share::{CurrFairShareScheduler, FairShareScheduler, UtFairShareScheduler};
pub use fifo::{FifoScheduler, RandomScheduler};
pub use general_ref::GeneralRefScheduler;
pub use rand_shapley::RandScheduler;
pub use ref_exact::RefScheduler;
pub use registry::{BuildContext, Registry, SchedulerFactory, SchedulerSpec, SpecError};
pub use round_robin::RoundRobinScheduler;

use crate::model::{ClusterInfo, JobMeta, MachineId, OrgId, Time};
use crate::utility::Util;

/// The information available at a scheduling decision point: the time, the
/// per-organization counts of released-but-unstarted jobs, and the free
/// machines.
#[derive(Debug)]
pub struct SelectContext<'a> {
    /// Current time.
    pub t: Time,
    /// `waiting[u]` = number of released, unstarted jobs of organization `u`.
    pub waiting: &'a [usize],
    /// Machines currently idle.
    pub free_machines: &'a [MachineId],
}

impl SelectContext<'_> {
    /// Organizations with at least one waiting job.
    pub fn waiting_orgs(&self) -> impl Iterator<Item = OrgId> + '_ {
        self.waiting
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .map(|(u, _)| OrgId(u as u32))
    }
}

/// An online, non-clairvoyant scheduler.
///
/// The engine calls the event hooks in causal order and never exposes a
/// job's processing time before its completion (`on_complete` implies
/// `proc_time = t − start`). All schedulers must be **greedy**: `select`
/// must return an organization with `waiting > 0` whenever asked.
pub trait Scheduler {
    /// Display name (used in experiment tables).
    fn name(&self) -> String;

    /// Called once before the simulation starts.
    fn init(&mut self, _info: &ClusterInfo) {}

    /// A job has been released.
    fn on_release(&mut self, _t: Time, _job: &JobMeta) {}

    /// A job has been started on `machine`.
    fn on_start(&mut self, _t: Time, _job: &JobMeta, _machine: MachineId) {}

    /// A job that started at `start` on `machine` has completed at `t`
    /// (its processing time, now revealed, is `t − start`).
    fn on_complete(
        &mut self,
        _t: Time,
        _job: &JobMeta,
        _machine: MachineId,
        _start: Time,
    ) {
    }

    /// Whether this scheduler supports mid-run job admission (online
    /// serving). Schedulers that keep no per-job trace state (the
    /// fair-share family, round robin, FIFO, DIRECTCONTR) admit for
    /// free; duration-oracle schedulers splice their oracle in
    /// [`Scheduler::on_admit`]. Return `false` (as the general REF
    /// does) to make sessions reject admission with a typed error
    /// *before* anything mutates.
    fn admits_jobs(&self) -> bool {
        true
    }

    /// A job not in the trace the scheduler was built from has been
    /// admitted mid-run. Only called when [`Scheduler::admits_jobs`] is
    /// true and the trace accepted the job.
    ///
    /// `job` is the full record *including* `proc_time`: schedulers
    /// built with the duration oracle (the REF family reads every
    /// processing time from the trace at construction) splice the new
    /// duration into their oracle here. `job.id` is the id the trace
    /// assigned — ids of jobs releasing later shift by one, but the
    /// engine guarantees those are all unreleased, so no scheduler has
    /// observed them.
    fn on_admit(&mut self, _job: &crate::model::Job) {}

    /// Chooses the organization whose FIFO-head job is started next.
    /// Must return an organization with a waiting job.
    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId;

    /// Optionally chooses which free machine receives the job (an index
    /// into `ctx.free_machines`); `None` lets the engine pick the first.
    /// Machine choice matters only for ownership-based accounting
    /// (DIRECTCONTR randomizes it, per Figure 9).
    fn pick_machine(
        &mut self,
        _ctx: &SelectContext<'_>,
        _job: &JobMeta,
    ) -> Option<usize> {
        None
    }
}

/// Deterministic argmax tie-breaking shared by the contribution-based
/// schedulers: prefer the largest key; break ties by the least recently
/// selected organization, then by index. This prevents a persistent bias
/// toward low-index organizations when keys tie (common at the start of a
/// trace when all utilities are 0).
#[derive(Clone, Debug, Default)]
pub struct OrgPicker {
    stamps: Vec<u64>,
    counter: u64,
}

impl OrgPicker {
    /// A picker for `n` organizations.
    pub fn new(n: usize) -> Self {
        OrgPicker { stamps: vec![0; n], counter: 0 }
    }

    /// Picks the organization with the maximal key among those with waiting
    /// jobs and records the pick. `key` is evaluated once per candidate.
    ///
    /// # Panics
    /// Panics if no organization has waiting jobs.
    pub fn pick_max(
        &mut self,
        ctx: &SelectContext<'_>,
        mut key: impl FnMut(OrgId) -> Util,
    ) -> OrgId {
        let best = ctx
            .waiting_orgs()
            .map(|u| {
                let k = key(u);
                // Max key, then min stamp, then min index.
                (u, k)
            })
            .max_by(|(a, ka), (b, kb)| {
                ka.cmp(kb)
                    .then_with(|| self.stamps[b.index()].cmp(&self.stamps[a.index()]))
                    .then_with(|| b.0.cmp(&a.0))
            })
            .map(|(u, _)| u)
            .expect("select called with no waiting jobs");
        self.note(best);
        best
    }

    /// Picks the organization with the **minimal** key (generic ordered
    /// key, e.g. a fair-share ratio) among those with waiting jobs, with the
    /// same recency/index tie-breaking as [`OrgPicker::pick_max`].
    pub fn pick_min_key<K: Ord>(
        &mut self,
        ctx: &SelectContext<'_>,
        mut key: impl FnMut(OrgId) -> K,
    ) -> OrgId {
        let best = ctx
            .waiting_orgs()
            .map(|u| (u, key(u)))
            .min_by(|(a, ka), (b, kb)| {
                ka.cmp(kb)
                    .then_with(|| self.stamps[a.index()].cmp(&self.stamps[b.index()]))
                    .then_with(|| a.0.cmp(&b.0))
            })
            .map(|(u, _)| u)
            .expect("select called with no waiting jobs");
        self.note(best);
        best
    }

    /// Records that `org` was selected (for recency tie-breaking).
    pub fn note(&mut self, org: OrgId) {
        self.counter += 1;
        self.stamps[org.index()] = self.counter;
    }
}

/// An exact non-negative ratio `num / den` with total ordering by
/// cross-multiplication; `den = 0` represents `+∞` (an organization with no
/// machines has an infinite usage-to-share ratio and is served last),
/// infinities ordered among themselves by numerator.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Frac {
    /// Numerator (usage-like quantity).
    pub num: Util,
    /// Denominator (share-like quantity); 0 encodes infinity.
    pub den: Util,
}

impl Frac {
    /// Builds a ratio.
    pub fn new(num: Util, den: Util) -> Self {
        debug_assert!(num >= 0 && den >= 0);
        Frac { num, den }
    }
}

impl Ord for Frac {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self.den, other.den) {
            (0, 0) => self.num.cmp(&other.num),
            (0, _) => std::cmp::Ordering::Greater,
            (_, 0) => std::cmp::Ordering::Less,
            // Cross-multiplication can overflow i128 for near-max
            // utilities; fall back to an exact 256-bit comparison.
            _ => match (self.num.checked_mul(other.den), other.num.checked_mul(self.den))
            {
                (Some(a), Some(b)) => a.cmp(&b),
                _ => wide_product_cmp(
                    self.num.unsigned_abs(),
                    other.den.unsigned_abs(),
                    other.num.unsigned_abs(),
                    self.den.unsigned_abs(),
                ),
            },
        }
    }
}

/// Compares `a·b` against `c·d` exactly via 128×128 → 256-bit products
/// (all operands non-negative, the [`Frac`] invariant).
fn wide_product_cmp(a: u128, b: u128, c: u128, d: u128) -> std::cmp::Ordering {
    mul_wide(a, b).cmp(&mul_wide(c, d))
}

/// Full 128×128 → 256-bit product as `(hi, lo)` limbs.
fn mul_wide(x: u128, y: u128) -> (u128, u128) {
    const MASK: u128 = (1 << 64) - 1;
    let (x_hi, x_lo) = (x >> 64, x & MASK);
    let (y_hi, y_lo) = (y >> 64, y & MASK);
    let ll = x_lo * y_lo;
    let lh = x_lo * y_hi;
    let hl = x_hi * y_lo;
    let hh = x_hi * y_hi;
    let (mid, mid_carry) = lh.overflowing_add(hl);
    let (lo, lo_carry) = ll.overflowing_add(mid << 64);
    let hi = hh + (mid >> 64) + ((mid_carry as u128) << 64) + lo_carry as u128;
    (hi, lo)
}

impl PartialOrd for Frac {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Tracks, per organization, a utility "bump": the one-step-ahead worth of
/// job units started at the current time moment.
///
/// `ψ_sp` of a job started at `t` is still 0 *at* `t`, so within a single
/// time moment the raw utilities cannot distinguish an organization that
/// just received a machine from one that did not. The paper's pseudo-code
/// handles this by incrementing the running counters on every start
/// (`finUt[org] += 1` in Figure 9; the analogous update in Figure 6); the
/// bump is that increment. It resets automatically when time advances,
/// because from then on the closed-form tracker values include the started
/// units.
#[derive(Clone, Debug, Default)]
pub struct StepBumps {
    bumps: Vec<Util>,
    at: Time,
}

impl StepBumps {
    /// Bumps for `n` organizations.
    pub fn new(n: usize) -> Self {
        StepBumps { bumps: vec![0; n], at: 0 }
    }

    /// The bump of `org` at time `t` (0 if time has advanced past the bumps).
    pub fn get(&self, t: Time, org: OrgId) -> Util {
        if t == self.at {
            self.bumps[org.index()]
        } else {
            0
        }
    }

    /// Adds `amount` to `org`'s bump at time `t`, clearing stale bumps.
    pub fn add(&mut self, t: Time, org: OrgId, amount: Util) {
        if t != self.at {
            self.bumps.fill(0);
            self.at = t;
        }
        self.bumps[org.index()] += amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picker_prefers_max_key() {
        let mut p = OrgPicker::new(3);
        let waiting = [1usize, 1, 1];
        let ctx = SelectContext { t: 0, waiting: &waiting, free_machines: &[] };
        let picked = p.pick_max(&ctx, |u| u.index() as Util);
        assert_eq!(picked, OrgId(2));
    }

    #[test]
    fn picker_skips_orgs_without_jobs() {
        let mut p = OrgPicker::new(3);
        let waiting = [0usize, 1, 0];
        let ctx = SelectContext { t: 0, waiting: &waiting, free_machines: &[] };
        assert_eq!(p.pick_max(&ctx, |_| 100), OrgId(1));
    }

    #[test]
    fn picker_rotates_on_ties() {
        let mut p = OrgPicker::new(2);
        let waiting = [1usize, 1];
        let ctx = SelectContext { t: 0, waiting: &waiting, free_machines: &[] };
        let first = p.pick_max(&ctx, |_| 0);
        let second = p.pick_max(&ctx, |_| 0);
        assert_ne!(first, second, "ties must rotate across organizations");
    }

    #[test]
    #[should_panic]
    fn picker_panics_without_waiting() {
        let mut p = OrgPicker::new(1);
        let waiting = [0usize];
        let ctx = SelectContext { t: 0, waiting: &waiting, free_machines: &[] };
        let _ = p.pick_max(&ctx, |_| 0);
    }

    #[test]
    fn bumps_reset_on_time_advance() {
        let mut b = StepBumps::new(2);
        b.add(5, OrgId(0), 1);
        b.add(5, OrgId(0), 1);
        assert_eq!(b.get(5, OrgId(0)), 2);
        assert_eq!(b.get(6, OrgId(0)), 0);
        b.add(6, OrgId(1), 3);
        assert_eq!(b.get(6, OrgId(0)), 0);
        assert_eq!(b.get(6, OrgId(1)), 3);
    }

    #[test]
    fn frac_ordering() {
        assert!(Frac::new(1, 2) < Frac::new(2, 3)); // 0.5 < 0.667
        assert!(Frac::new(2, 4) == Frac::new(2, 4));
        assert_eq!(Frac::new(1, 2).cmp(&Frac::new(2, 4)), std::cmp::Ordering::Equal);
        // Infinities: den = 0 beats everything finite.
        assert!(Frac::new(0, 0) > Frac::new(1_000_000, 1));
        assert!(Frac::new(1, 0) > Frac::new(0, 0));
    }

    #[test]
    fn frac_ordering_survives_i128_overflow() {
        // Regression: near-max utilities overflow the naive i128
        // cross-multiplication (a debug-build panic before the widening
        // fallback). 2^100/2^101 = 1/2 < 2^102/2^101 = 2.
        let huge = 1i128 << 100;
        let a = Frac::new(huge, 2 * huge);
        let b = Frac::new(4 * huge, 2 * huge);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        // Equal ratios with non-identical huge parts: x/x == y/y.
        assert_eq!(
            Frac::new(huge, huge).cmp(&Frac::new(3 * huge, 3 * huge)),
            std::cmp::Ordering::Equal
        );
        // Max-value corner: MAX/1 vs (MAX−1)/1 must not wrap.
        assert!(Frac::new(Util::MAX, 1) > Frac::new(Util::MAX - 1, 1));
        // And the wide path agrees with the narrow one where both work.
        assert_eq!(wide_product_cmp(3, 5, 4, 4), (3i128 * 5).cmp(&(4 * 4)));
    }

    #[test]
    fn mul_wide_matches_known_products() {
        assert_eq!(mul_wide(0, u128::MAX), (0, 0));
        assert_eq!(mul_wide(1, u128::MAX), (0, u128::MAX));
        assert_eq!(mul_wide(2, u128::MAX), (1, u128::MAX - 1));
        assert_eq!(mul_wide(1 << 64, 1 << 64), (1, 0));
        assert_eq!(mul_wide(u128::MAX, u128::MAX), (u128::MAX - 1, 1));
    }

    #[test]
    fn pick_min_key_prefers_smallest() {
        let mut p = OrgPicker::new(3);
        let waiting = [1usize, 1, 1];
        let ctx = SelectContext { t: 0, waiting: &waiting, free_machines: &[] };
        let keys = [5i128, 2, 9];
        assert_eq!(p.pick_min_key(&ctx, |u| keys[u.index()]), OrgId(1));
    }

    #[test]
    fn pick_min_rotates_on_ties() {
        let mut p = OrgPicker::new(2);
        let waiting = [1usize, 1];
        let ctx = SelectContext { t: 0, waiting: &waiting, free_machines: &[] };
        let a = p.pick_min_key(&ctx, |_| 0i128);
        let b = p.pick_min_key(&ctx, |_| 0i128);
        assert_ne!(a, b);
    }

    #[test]
    fn waiting_orgs_iterator() {
        let waiting = [0usize, 2, 1];
        let ctx = SelectContext { t: 0, waiting: &waiting, free_machines: &[] };
        let orgs: Vec<_> = ctx.waiting_orgs().collect();
        assert_eq!(orgs, vec![OrgId(1), OrgId(2)]);
    }
}
