//! DIRECTCONTR (Figure 9): the paper's practical polynomial heuristic.
//!
//! The contribution of an organization is estimated *directly* — without
//! enumerating subcoalitions — as the `ψ_sp`-value of the job parts
//! computed **on its machines** (for anyone's jobs), while its utility is
//! the `ψ_sp`-value of **its jobs'** parts (on anyone's machines). Jobs are
//! assigned to free machines in random order, and the organization with the
//! largest contribution-minus-utility surplus goes first — the same
//! `argmax (φ − ψ)` selection rule as REF, with the heuristic `φ`.
//!
//! Deviation note (documented in DESIGN.md): the published pseudo-code
//! swaps `φ[own(J)]`/`ψ[own(m)]` relative to the prose; we follow the prose
//! ("the job that is started on processor m increases the contribution of
//! the owner of m by the utility of this job"). Instead of the incremental
//! drift updates of Figure 9 (which are an event-driven computation of
//! `ψ_sp` closed forms), we track the closed forms exactly with
//! [`SpTracker`]s — same quantities, no accumulation drift.

use super::{OrgPicker, Scheduler, SelectContext, StepBumps};
use crate::model::{ClusterInfo, JobMeta, MachineId, OrgId, Time};
use crate::utility::SpTracker;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The DIRECTCONTR heuristic scheduler. Non-clairvoyant and polynomial:
/// per decision it only compares `k` surplus values.
#[derive(Clone, Debug)]
pub struct DirectContrScheduler {
    /// ψ per job-owning organization.
    utility: Vec<SpTracker>,
    /// φ per machine-owning organization.
    contribution: Vec<SpTracker>,
    /// Within-step bumps on ψ (job owner).
    psi_bumps: StepBumps,
    /// Within-step bumps on φ (machine owner).
    phi_bumps: StepBumps,
    picker: OrgPicker,
    owners: Vec<OrgId>,
    rng: StdRng,
    bumps_enabled: bool,
}

impl DirectContrScheduler {
    /// A DIRECTCONTR scheduler; `seed` drives the random machine
    /// permutation of Figure 9.
    pub fn new(seed: u64) -> Self {
        DirectContrScheduler {
            utility: Vec::new(),
            contribution: Vec::new(),
            psi_bumps: StepBumps::new(0),
            phi_bumps: StepBumps::new(0),
            picker: OrgPicker::new(0),
            owners: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            bumps_enabled: true,
        }
    }

    /// Disables the within-time-step bumps (Figure 9's `finUt/finCon += 1`
    /// on start) — the ablation of DESIGN.md §2.
    pub fn without_step_bumps(mut self) -> Self {
        self.bumps_enabled = false;
        self
    }
}

impl Scheduler for DirectContrScheduler {
    fn name(&self) -> String {
        "DirectContr".into()
    }

    fn init(&mut self, info: &ClusterInfo) {
        let n = info.n_orgs();
        self.utility = vec![SpTracker::new(); n];
        self.contribution = vec![SpTracker::new(); n];
        self.psi_bumps = StepBumps::new(n);
        self.phi_bumps = StepBumps::new(n);
        self.picker = OrgPicker::new(n);
        self.owners =
            (0..info.n_machines()).map(|m| info.owner(MachineId(m as u32))).collect();
    }

    fn on_start(&mut self, t: Time, job: &JobMeta, machine: MachineId) {
        let owner = self.owners[machine.index()];
        self.utility[job.org.index()].on_start(t);
        self.contribution[owner.index()].on_start(t);
        // Figure 9's `finUt[org] += 1; finCon[own(m)] += 1` on start: the
        // one-step-ahead worth of the unit just placed.
        if self.bumps_enabled {
            self.psi_bumps.add(t, job.org, 1);
            self.phi_bumps.add(t, owner, 1);
        }
    }

    fn on_complete(&mut self, t: Time, job: &JobMeta, machine: MachineId, start: Time) {
        let owner = self.owners[machine.index()];
        self.utility[job.org.index()].on_complete(start, t);
        self.contribution[owner.index()].on_complete(start, t);
    }

    fn select(&mut self, ctx: &SelectContext<'_>) -> OrgId {
        let t = ctx.t;
        let utility = &self.utility;
        let contribution = &self.contribution;
        let psi_bumps = &self.psi_bumps;
        let phi_bumps = &self.phi_bumps;
        self.picker.pick_max(ctx, |u| {
            let phi = contribution[u.index()].value_at(t) + phi_bumps.get(t, u);
            let psi = utility[u.index()].value_at(t) + psi_bumps.get(t, u);
            phi - psi
        })
    }

    fn pick_machine(&mut self, ctx: &SelectContext<'_>, _job: &JobMeta) -> Option<usize> {
        // Figure 9 iterates processors in a random permutation; for the
        // single machine being filled this is a uniform pick among the free
        // ones.
        if ctx.free_machines.is_empty() {
            None
        } else {
            Some(self.rng.random_range(0..ctx.free_machines.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::JobId;

    fn meta(id: u32, org: u32) -> JobMeta {
        JobMeta { id: JobId(id), org: OrgId(org), release: 0 }
    }

    fn ctx<'a>(
        t: Time,
        waiting: &'a [usize],
        free: &'a [MachineId],
    ) -> SelectContext<'a> {
        SelectContext { t, waiting, free_machines: free }
    }

    #[test]
    fn surplus_prefers_contributing_org() {
        // Two orgs, one machine each. Org 1's machine computed org 0's job
        // for 10 units: org 1 has contribution 10-ish, utility 0.
        let mut s = DirectContrScheduler::new(1);
        s.init(&ClusterInfo::new(vec![1, 1]));
        // Org 0's job runs on machine 1 (owned by org 1).
        s.on_start(0, &meta(0, 0), MachineId(1));
        s.on_complete(10, &meta(0, 0), MachineId(1), 0);
        let w = [1usize, 1];
        // phi(org1) - psi(org1) = 55 - 0 > phi(org0) - psi(org0) = 0 - 55.
        assert_eq!(s.select(&ctx(10, &w, &[])), OrgId(1));
    }

    #[test]
    fn own_machine_own_job_is_neutral() {
        // A job of org 0 on org 0's machine adds equally to phi and psi:
        // surplus stays 0, so ties rotate.
        let mut s = DirectContrScheduler::new(2);
        s.init(&ClusterInfo::new(vec![1, 1]));
        s.on_start(0, &meta(0, 0), MachineId(0));
        s.on_complete(5, &meta(0, 0), MachineId(0), 0);
        let w = [1usize, 1];
        let a = s.select(&ctx(5, &w, &[]));
        let b = s.select(&ctx(5, &w, &[]));
        assert_ne!(a, b, "neutral history must leave orgs tied");
    }

    #[test]
    fn bumps_rotate_within_step() {
        let mut s = DirectContrScheduler::new(3);
        s.init(&ClusterInfo::new(vec![1, 1]));
        let w = [2usize, 2];
        let first = s.select(&ctx(0, &w, &[]));
        // Starting first's job on ITS OWN machine bumps psi and phi equally;
        // start it on the other org's machine: phi goes to the other org.
        let other = OrgId(1 - first.0);
        let machine = MachineId(other.0); // other org's machine
        s.on_start(0, &meta(0, first.0), machine);
        // Now other org has phi-bump 1, first has psi-bump 1: other wins.
        assert_eq!(s.select(&ctx(0, &w, &[])), other);
    }

    #[test]
    fn machine_pick_is_among_free() {
        let mut s = DirectContrScheduler::new(4);
        s.init(&ClusterInfo::new(vec![2, 2]));
        let free = [MachineId(1), MachineId(3)];
        let w = [1usize, 0];
        for _ in 0..10 {
            let idx = s.pick_machine(&ctx(0, &w, &free), &meta(0, 0)).unwrap();
            assert!(idx < free.len());
        }
        assert_eq!(s.pick_machine(&ctx(0, &w, &[]), &meta(0, 0)), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut s = DirectContrScheduler::new(seed);
            s.init(&ClusterInfo::new(vec![1, 1, 1]));
            let w = [1usize, 1, 1];
            let free = [MachineId(0), MachineId(1), MachineId(2)];
            (0..10)
                .map(|_| s.pick_machine(&ctx(0, &w, &free), &meta(0, 0)).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }
}
