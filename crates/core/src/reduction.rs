//! The executable SUBSETSUM reduction of Theorem 5.1.
//!
//! Theorem 5.1 proves that computing an organization's Shapley contribution
//! in the fair-scheduling game is NP-hard, by encoding a SUBSETSUM instance
//! `(S, x)` into a scheduling instance in which the contribution of a
//! jobless, one-machine organization `a` reveals the number `n_{<x}(S)` of
//! join orderings whose prefix is a small-sum subset of `S` (plus `b`):
//! `⌊(k+2)!·φ(a) / L⌋ = n_{<x}(S)`, where `L` is the size of a dominating
//! "large" job. Comparing the counts for `x` and `x+1` answers SUBSETSUM.
//!
//! This module builds the instance, computes the contribution **exactly**
//! (integer Shapley over the full coalition lattice — the reason the crate
//! keeps `ψ_sp` in `i128`), and recovers the count. It doubles as an
//! end-to-end stress test of the lattice and as the
//! `subset_sum_reduction` example.

use crate::model::{OrgId, Time, Trace};
use crate::scheduler::lattice::{CoalitionLattice, Policy};
use coopgame::{factorial, Coalition};

/// A constructed reduction instance.
#[derive(Clone, Debug)]
pub struct ReductionInstance {
    /// The scheduling instance (orgs `0..k` are the set elements, `k` is
    /// the jobless organization `a`, `k+1` is `b` with the large job).
    pub trace: Trace,
    /// The dominating job size `L`.
    pub large: Time,
    /// The jobless organization whose contribution encodes the count.
    pub a: OrgId,
    /// The organization owning the large job.
    pub b: OrgId,
    /// A time by which every job in every coalition schedule has completed.
    pub eval_time: Time,
}

/// Builds the Theorem 5.1 instance for SUBSETSUM input `(s, x)`.
///
/// Organizations: one per element of `s` (with jobs sized by the element),
/// plus the jobless `a` and the large-job owner `b`; one machine each.
///
/// # Panics
/// Panics if `s` is empty or has more than 8 elements (the exact
/// contribution computation enumerates `2^(|s|+2)` coalitions), or if
/// `x` is outside `1..=Σs` — outside that range SUBSETSUM is trivial and
/// the proof's schedule-structure assumptions (the large job's start time
/// depending on whether `y = Σ of the coalition's elements` reaches `x`)
/// no longer discriminate anything.
pub fn build_instance(s: &[u64], x: u64) -> ReductionInstance {
    assert!(!s.is_empty() && s.len() <= 8, "supported set sizes: 1..=8");
    let sum: u64 = s.iter().sum();
    assert!(
        (1..=sum).contains(&x),
        "the reduction is defined for 1 <= x <= sum(S); x={x}, sum={sum}"
    );
    let k = s.len();
    let x_tot: u64 = s.iter().sum::<u64>() + 2;
    let large = 4 * (k as u64) * x_tot * x_tot * (factorial(k + 2) as u64) + 1;

    let mut b = Trace::builder();
    let os: Vec<OrgId> = (0..k).map(|i| b.org(format!("s{i}={}", s[i]), 1)).collect();
    let a = b.org("a", 1);
    let bb = b.org("b", 1);
    for (i, &xi) in s.iter().enumerate() {
        // J1, J2: unit jobs at t=0; J3: 2·x_tot at t=3; J4: 2·x_i at t=4.
        b.job(os[i], 0, 1);
        b.job(os[i], 0, 1);
        b.job(os[i], 3, 2 * x_tot);
        b.job(os[i], 4, 2 * xi);
    }
    // b: J1 = (r=2, p=2x+2), J2 = (r=2x+3, p=L).
    b.job(bb, 2, 2 * x + 2);
    b.job(bb, 2 * x + 3, large);
    let trace = b.build().expect("reduction instance is valid");
    // Slowest completion: the large job started no later than 2x+4 in the
    // singleton coalition {b} (after its first job), plus L; J3 jobs end by
    // 3 + 2·x_tot·k even if serialized.
    let eval_time = (2 * x + 5 + large).max(4 + 2 * x_tot * k as u64) + 2 * x_tot;
    ReductionInstance { trace, large, a, b: bb, eval_time }
}

/// The combinatorial count `n_{<x}(S) = Σ_{S'⊆S, ΣS'<x} (|S'|+1)!(|S|−|S'|)!`
/// — the number of orderings of `S ∪ {a,b}` in which `a` is immediately
/// preceded by exactly `S' ∪ {b}` for some small-sum `S'`.
pub fn count_small_subsets(s: &[u64], x: u64) -> u128 {
    let k = s.len();
    let mut count: u128 = 0;
    for bits in 0u64..(1 << k) {
        let subset = Coalition::from_bits(bits);
        let sum: u64 = subset.members().map(|p| s[p.0]).sum();
        if sum < x {
            count += factorial(subset.len() + 1) * factorial(k - subset.len());
        }
    }
    count
}

/// Computes `a`'s exact scaled contribution `φ(a)·(k+2)!` by running the
/// fair (REF-rule) schedule for **every** coalition and applying the exact
/// integer Shapley formula, then recovers `⌊φ_scaled(a)/L⌋` — which
/// Theorem 5.1 shows equals `n_{<x}(S)` *under the proof's schedule
/// assumption* that organization `b` wins the selection at `t = 2x+4` in
/// every coalition containing it.
///
/// **Reproduction finding** (documented in DESIGN.md / EXPERIMENTS.md):
/// that prioritization claim is not robust. Under the literal REF rule the
/// waiting fourth jobs of the set organizations can outrank `b`'s large
/// job at `t = 2x+4`, delaying it and making `a`'s marginal contribution
/// to that coalition `≈ −2L` — the extracted count is then wrong. The
/// failure is detectable: `φ(a)` goes negative. This function returns
/// `None` in that case and the exact count otherwise; empirically, every
/// instance with `φ(a) ≥ 0` recovers `n_{<x}(S)` exactly (see the
/// `subset_sum_reduction` example and the integration tests).
pub fn count_via_contribution(inst: &ReductionInstance) -> Option<u128> {
    let machines: Vec<usize> = inst.trace.orgs().iter().map(|o| o.n_machines).collect();
    let n = machines.len();
    let all: Vec<Coalition> = (1u64..(1 << n)).map(Coalition::from_bits).collect();
    let mut lattice = CoalitionLattice::with_coalitions(&machines, &all, Policy::Fair);
    for job in inst.trace.jobs() {
        lattice.release(job.release, job.org, job.proc_time);
    }
    let t = inst.eval_time;
    lattice.settle(t);
    let phi = lattice.shapley_for(Coalition::grand(n), t, None);
    let phi_a = phi[inst.a.index()];
    if phi_a < 0 {
        // The proof's prioritization assumption failed for this instance
        // (see the doc comment): the count cannot be extracted.
        return None;
    }
    Some((phi_a as u128) / (inst.large as u128))
}

/// Decides SUBSETSUM through the scheduling reduction: builds the instances
/// for `x` and `x+1`, recovers both counts from contributions, and reports
/// whether a subset summing exactly to `x` exists. The trivial cases
/// (`x = 0`: the empty subset; `x ≥ Σs`: only the full set can work) are
/// answered directly, matching the reduction's domain. Returns `None` when
/// the count extraction fails on either instance (see
/// [`count_via_contribution`]).
pub fn solve_subset_sum_via_scheduling(s: &[u64], x: u64) -> Option<bool> {
    let sum: u64 = s.iter().sum();
    if x == 0 {
        return Some(true); // the empty subset
    }
    if x > sum {
        return Some(false);
    }
    if x == sum {
        return Some(true); // the full set
    }
    let at_x = count_via_contribution(&build_instance(s, x))?;
    let at_x1 = count_via_contribution(&build_instance(s, x + 1))?;
    Some(at_x1 > at_x)
}

/// Brute-force SUBSETSUM (ground truth for tests and the example).
pub fn subset_sum_brute(s: &[u64], x: u64) -> bool {
    (0u64..(1 << s.len())).any(|bits| {
        Coalition::from_bits(bits).members().map(|p| s[p.0]).sum::<u64>() == x
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinatorial_count_matches_hand_calc() {
        // S = {1, 2}: subsets {} (0), {1}, {2}, {1,2} (3).
        // n_{<2}: {} and {1}: (1!·2!) + (2!·1!) = 2 + 2 = 4.
        assert_eq!(count_small_subsets(&[1, 2], 2), 4);
        // n_{<3}: add {2}: 6.
        assert_eq!(count_small_subsets(&[1, 2], 3), 6);
        // n_{<4}: add {1,2} (sum 3): 6 + 3!·0! = 12.
        assert_eq!(count_small_subsets(&[1, 2], 4), 12);
        // n_{<1}: only {}: 2.
        assert_eq!(count_small_subsets(&[1, 2], 1), 2);
    }

    #[test]
    fn count_monotone_in_x() {
        let s = [2u64, 3, 5];
        let mut prev = 0;
        for x in 0..12 {
            let c = count_small_subsets(&s, x);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn brute_force_subset_sum() {
        assert!(subset_sum_brute(&[1, 2], 3));
        assert!(subset_sum_brute(&[1, 2], 0)); // empty subset
        assert!(!subset_sum_brute(&[2, 4], 3));
        assert!(subset_sum_brute(&[2, 4], 6));
    }

    #[test]
    fn instance_shape() {
        let inst = build_instance(&[1, 2], 2);
        assert_eq!(inst.trace.n_orgs(), 4);
        assert_eq!(inst.a, OrgId(2));
        assert_eq!(inst.b, OrgId(3));
        // 4 jobs per set org + 2 for b.
        assert_eq!(inst.trace.n_jobs(), 2 * 4 + 2);
        assert_eq!(inst.trace.jobs_of(inst.a).count(), 0);
        // x_tot = 1+2+2 = 5, k = 2: L = 4·2·25·24 + 1 = 4801.
        assert_eq!(inst.large, 4801);
        inst.trace.validate().unwrap();
    }

    // The end-to-end reduction (contribution → count → SUBSETSUM answer) is
    // exercised in the integration tests and the `subset_sum_reduction`
    // example; a smoke version with the smallest instance lives here.
    #[test]
    fn contribution_count_smoke() {
        let s = [1u64, 2];
        let inst = build_instance(&s, 2);
        let via_phi =
            count_via_contribution(&inst).expect("priority assumption holds here");
        let combinatorial = count_small_subsets(&s, 2);
        assert_eq!(via_phi, combinatorial);
    }

    #[test]
    fn prioritization_failure_is_detected_not_silent() {
        // S = {1,3,5}, x = 4: the proof's "b wins at t=2x+4" assumption
        // fails under the literal REF rule; the extractor must report it.
        let inst = build_instance(&[1, 3, 5], 4);
        assert_eq!(count_via_contribution(&inst), None);
    }

    #[test]
    fn solve_handles_trivial_domains() {
        assert_eq!(solve_subset_sum_via_scheduling(&[2, 4], 0), Some(true));
        assert_eq!(solve_subset_sum_via_scheduling(&[2, 4], 6), Some(true));
        assert_eq!(solve_subset_sum_via_scheduling(&[2, 4], 7), Some(false));
        assert_eq!(solve_subset_sum_via_scheduling(&[2, 4], 3), Some(false));
        assert_eq!(solve_subset_sum_via_scheduling(&[2, 4], 2), Some(true));
    }

    #[test]
    #[should_panic(expected = "1 <= x <= sum")]
    fn build_rejects_out_of_domain_x() {
        let _ = build_instance(&[1, 2], 9);
    }
}
