//! Core model and algorithms for **non-monetary fair scheduling** in
//! multi-organizational systems, reproducing Skowron & Rzadca,
//! *"Non-monetary fair scheduling — a cooperative game theory approach"*
//! (SPAA 2013, arXiv:1302.0948).
//!
//! # The model
//!
//! `k` independent organizations pool their clusters. Each organization
//! contributes machines and a FIFO stream of sequential, non-preemptible
//! jobs; scheduling is **online** (jobs unknown before release) and
//! **non-clairvoyant** (processing times unknown until completion). All
//! schedulers are *greedy*: a free machine is never left idle while a job
//! waits.
//!
//! # Fairness
//!
//! Fairness is game-theoretic: the coalition's value is the sum of
//! per-organization utilities under the strategy-proof utility
//! [`utility::SpUtility`] (the unique utility satisfying the paper's three
//! axioms, Theorem 4.1), and each organization's ideal payoff is its
//! **Shapley value** in that game. A fair scheduler keeps realized utilities
//! as close as possible (Manhattan metric) to the Shapley contributions at
//! every time step, recursively for all subcoalitions (Definitions 3.1–3.2).
//!
//! # What's here
//!
//! * [`model`] — organizations, machines, jobs, traces.
//! * [`schedule`] — schedules, validation of the model invariants
//!   (no machine overlap, per-organization FIFO, greediness).
//! * [`utility`] — the strategy-proof utility `ψ_sp` (exact integer
//!   arithmetic), classic alternatives (flow time, resource utilization,
//!   makespan, tardiness) and axiom checkers.
//! * [`scheduler`] — the paper's algorithms: exact exponential [`scheduler::RefScheduler`]
//!   (Figure 1/3), randomized [`scheduler::RandScheduler`] (Figure 6, the
//!   FPRAS of Theorem 5.6), heuristic [`scheduler::DirectContrScheduler`]
//!   (Figure 9), and the baselines (round robin and the fair-share family) —
//!   all constructible from spec strings (`"rand:perms=15"`) through the
//!   [`scheduler::registry`], which downstream crates extend with their
//!   own policies via [`scheduler::registry::Registry::register`].
//! * [`fairness`] — the evaluation metric `Δψ/p_tot` of Section 7.2 and
//!   the per-moment unfairness timeline.
//! * [`checked_time`] — widening/saturating arithmetic on [`Time`]
//!   values, the vocabulary the `time-arith-widening` lint rule approves.
//! * [`journal`] — the crash-safe filesystem primitives (atomic
//!   write-then-rename, torn-tail-tolerant line journals) shared by the
//!   durable experiment runner and the online serving daemon.
//! * [`analysis`] — materialize the cooperative game a trace induces
//!   (supermodularity/core checks, Shapley shares, the Theorem 5.3 gap).
//! * [`reduction`] — the executable SUBSETSUM reduction of Theorem 5.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod checked_time;
pub mod fairness;
pub mod journal;
pub mod model;
pub mod reduction;
pub mod schedule;
pub mod scheduler;
pub mod spec;
pub mod utility;

pub use model::{Job, JobId, JobMeta, MachineId, OrgId, OrgSpec, Time, Trace};
pub use schedule::{Schedule, ScheduledJob};
pub use utility::Util;
