//! The shared `name[:key=value,...]` spec grammar.
//!
//! Two registries address their factories by spec strings: schedulers
//! ([`crate::scheduler::registry::SchedulerSpec`], e.g. `rand:perms=15`)
//! and workloads (`fairsched_workloads::spec::WorkloadSpec`, e.g.
//! `synth:preset=ricc,scale=0.5`). Both must parse, canonicalize, and
//! render *identically* — experiment matrices are pure data built from
//! these strings — so the grammar lives here once and each registry wraps
//! [`SpecBody`] in its own domain type with domain-worded errors.
//!
//! Grammar: `name` or `name:key=value,key=value`. Names and keys are
//! lowercase identifiers (`[a-z0-9_-]`); values are non-empty and free of
//! `,`/`=`. Parameters are kept sorted by key, so `Display` output is
//! canonical and `FromStr` ∘ `Display` is the identity on canonical
//! strings.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Whether `s` is a valid spec name / parameter key.
pub fn valid_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-_".contains(c))
}

/// Grammar-level parse failures (no domain knowledge: both registries map
/// these into their own error types, preserving the wording).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecParseError {
    /// The spec string was empty.
    Empty,
    /// The spec string does not follow `name[:key=value,...]`.
    BadSyntax {
        /// The offending input.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
}

/// Parameter-level failures reported by [`SpecBody`] helpers; the wrapping
/// spec type attaches its own name and domain wording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// A parameter key outside the accepted set.
    Unknown {
        /// The rejected key.
        param: String,
        /// Keys the factory accepts.
        accepted: Vec<String>,
    },
    /// A parameter value failed to parse or violated a constraint.
    Bad {
        /// The parameter key.
        param: String,
        /// What was wrong with the value.
        reason: String,
    },
}

/// The parsed form shared by every spec type: a registry name plus sorted
/// string parameters, with a canonical textual rendering.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpecBody {
    name: String,
    params: BTreeMap<String, String>,
}

impl SpecBody {
    /// A parameterless spec.
    pub fn bare(name: impl Into<String>) -> Self {
        let name = name.into();
        debug_assert!(valid_ident(&name), "invalid spec name {name:?}");
        SpecBody { name, params: BTreeMap::new() }
    }

    /// Adds or replaces a parameter (builder style).
    ///
    /// # Panics
    /// Panics if the key is not a lowercase identifier or the rendered
    /// value is empty or contains `,`/`=` — such specs would break the
    /// `Display`/`FromStr` (and serde) round-trip contract.
    pub fn with(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        let key = key.into();
        assert!(valid_ident(&key), "invalid spec param key {key:?}");
        let value = value.to_string();
        assert!(
            !value.is_empty() && !value.contains([',', '=']),
            "invalid spec param value {value:?} for key {key:?}"
        );
        self.params.insert(key, value);
        self
    }

    /// The registry name this spec selects.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All parameters, sorted by key.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// A raw parameter value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// Rejects parameters outside `accepted` (factories call this first so
    /// typos fail loudly instead of silently using defaults).
    pub fn deny_unknown_params(&self, accepted: &[&str]) -> Result<(), ParamError> {
        for key in self.params.keys() {
            if !accepted.contains(&key.as_str()) {
                return Err(ParamError::Unknown {
                    param: key.clone(),
                    accepted: accepted.iter().map(|s| s.to_string()).collect(),
                });
            }
        }
        Ok(())
    }

    /// A typed parameter with a default.
    pub fn parsed<T: FromStr>(&self, key: &str, default: T) -> Result<T, ParamError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ParamError::Bad {
                param: key.to_string(),
                reason: format!("cannot parse {raw:?} as {}", std::any::type_name::<T>()),
            }),
        }
    }
}

impl fmt::Display for SpecBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (i, (k, v)) in self.params.iter().enumerate() {
            write!(f, "{}{k}={v}", if i == 0 { ':' } else { ',' })?;
        }
        Ok(())
    }
}

impl FromStr for SpecBody {
    type Err = SpecParseError;

    fn from_str(s: &str) -> Result<Self, SpecParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecParseError::Empty);
        }
        let bad = |reason: &str| SpecParseError::BadSyntax {
            spec: s.to_string(),
            reason: reason.to_string(),
        };
        let (name, rest) = match s.split_once(':') {
            None => (s, None),
            Some((name, rest)) => (name, Some(rest)),
        };
        if !valid_ident(name) {
            return Err(bad("name must be a lowercase identifier"));
        }
        let mut params = BTreeMap::new();
        if let Some(rest) = rest {
            if rest.is_empty() {
                return Err(bad("trailing ':' without parameters"));
            }
            for pair in rest.split(',') {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| bad("parameters must look like key=value"))?;
                if !valid_ident(key) {
                    return Err(bad("parameter keys must be lowercase identifiers"));
                }
                if value.is_empty() {
                    return Err(bad("parameter values must be non-empty"));
                }
                if params.insert(key.to_string(), value.to_string()).is_some() {
                    return Err(bad("duplicate parameter key"));
                }
            }
        }
        Ok(SpecBody { name: name.to_string(), params })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_and_parameterized() {
        let s: SpecBody = "ref".parse().unwrap();
        assert_eq!(s.name(), "ref");
        assert_eq!(s.params().count(), 0);

        let s: SpecBody = "synth:preset=ricc,scale=0.5".parse().unwrap();
        assert_eq!(s.name(), "synth");
        assert_eq!(s.get("preset"), Some("ricc"));
        assert_eq!(s.get("scale"), Some("0.5"));
    }

    #[test]
    fn display_is_canonical_and_round_trips() {
        for text in ["fpt:k=8", "synth:orgs=5,preset=lpc,scale=0.1", "swf:path=/a/b"] {
            let spec: SpecBody = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            let again: SpecBody = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
        // Parameters sort into canonical order.
        let spec: SpecBody = "synth:scale=0.1,preset=lpc".parse().unwrap();
        assert_eq!(spec.to_string(), "synth:preset=lpc,scale=0.1");
    }

    #[test]
    fn rejects_malformed() {
        for text in ["", " ", "Ref", "x:", "x:k", "x:k=", "a b", "x:k=1,k=2", "x:=1"] {
            assert!(text.parse::<SpecBody>().is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn param_helpers() {
        let s: SpecBody = "fpt:k=8".parse().unwrap();
        assert_eq!(s.parsed("k", 0usize).unwrap(), 8);
        assert_eq!(s.parsed("horizon", 2_000u64).unwrap(), 2_000);
        assert!(matches!(
            s.deny_unknown_params(&["horizon"]),
            Err(ParamError::Unknown { .. })
        ));
        let bad: SpecBody = "fpt:k=eight".parse().unwrap();
        assert!(matches!(bad.parsed("k", 0usize), Err(ParamError::Bad { .. })));
    }

    #[test]
    #[should_panic(expected = "invalid spec param value")]
    fn with_rejects_values_that_break_round_trip() {
        let _ = SpecBody::bare("x").with("k", "a,b=1");
    }
}
