//! The shared `name[:key=value,...]` spec grammar.
//!
//! Two registries address their factories by spec strings: schedulers
//! ([`crate::scheduler::registry::SchedulerSpec`], e.g. `rand:perms=15`)
//! and workloads (`fairsched_workloads::spec::WorkloadSpec`, e.g.
//! `synth:preset=ricc,scale=0.5`). Both must parse, canonicalize, and
//! render *identically* — experiment matrices are pure data built from
//! these strings — so the grammar lives here once and each registry wraps
//! [`SpecBody`] in its own domain type with domain-worded errors.
//!
//! Grammar: `name` or `name:key=value,key=value`. Names and keys are
//! lowercase identifiers (`[a-z0-9_-]`); values are non-empty. The
//! structural characters `%`, `,`, `=` and ASCII whitespace are
//! percent-escaped inside values (`%25`, `%2c`, `%3d`, `%20`, …), so
//! arbitrary strings — e.g. SWF archive paths containing commas —
//! round-trip: [`SpecBody::with`] stores the raw value, `Display`
//! escapes it, and `FromStr` unescapes. Parameters
//! are kept sorted by key, so `Display` output is canonical and
//! `FromStr` ∘ `Display` is the identity on canonical strings.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Whether `s` is a valid spec name / parameter key.
pub fn valid_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-_".contains(c))
}

/// Percent-escapes the characters the grammar cannot carry raw inside a
/// parameter value: the structural `%`/`,`/`=` (→ `%25`/`%2c`/`%3d`) and
/// ASCII whitespace (space/tab/LF/CR → `%20`/`%09`/`%0a`/`%0d`, which the
/// whole-spec `trim` in `FromStr` would otherwise strip). Everything else
/// passes through, so `unescape_value(&escape_value(v)) == v` for every
/// string.
pub fn escape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '%' => out.push_str("%25"),
            ',' => out.push_str("%2c"),
            '=' => out.push_str("%3d"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            c => out.push(c),
        }
    }
    out
}

/// Undoes [`escape_value`]. Only the escapes the grammar emits (`%25`,
/// `%2c`, `%3d`, `%20`, `%09`, `%0a`, `%0d`, case-insensitive) are
/// accepted; any other use of `%` is an error, keeping parse ∘ display
/// exact.
pub fn unescape_value(raw: &str) -> Result<String, String> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let pair: String = chars.by_ref().take(2).collect();
        match pair.to_ascii_lowercase().as_str() {
            "25" => out.push('%'),
            "2c" => out.push(','),
            "3d" => out.push('='),
            "20" => out.push(' '),
            "09" => out.push('\t'),
            "0a" => out.push('\n'),
            "0d" => out.push('\r'),
            _ => {
                return Err(format!(
                    "invalid percent-escape \"%{pair}\" (defined: %25 %2c %3d %20 %09 %0a %0d)"
                ))
            }
        }
    }
    Ok(out)
}

/// Grammar-level parse failures (no domain knowledge: both registries map
/// these into their own error types, preserving the wording).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecParseError {
    /// The spec string was empty.
    Empty,
    /// The spec string does not follow `name[:key=value,...]`.
    BadSyntax {
        /// The offending input.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
}

/// Parameter-level failures reported by [`SpecBody`] helpers; the wrapping
/// spec type attaches its own name and domain wording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// A parameter key outside the accepted set.
    Unknown {
        /// The rejected key.
        param: String,
        /// Keys the factory accepts.
        accepted: Vec<String>,
    },
    /// A parameter value failed to parse or violated a constraint.
    Bad {
        /// The parameter key.
        param: String,
        /// What was wrong with the value.
        reason: String,
    },
}

/// The parsed form shared by every spec type: a registry name plus sorted
/// string parameters, with a canonical textual rendering.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpecBody {
    name: String,
    params: BTreeMap<String, String>,
}

impl SpecBody {
    /// A parameterless spec.
    pub fn bare(name: impl Into<String>) -> Self {
        let name = name.into();
        debug_assert!(valid_ident(&name), "invalid spec name {name:?}");
        SpecBody { name, params: BTreeMap::new() }
    }

    /// Adds or replaces a parameter (builder style). The value is stored
    /// raw; `Display` percent-escapes the structural characters
    /// `%`/`,`/`=` (as `%25`/`%2c`/`%3d`) so any non-empty value —
    /// archive paths with commas included — survives the
    /// `Display`/`FromStr` (and serde) round trip.
    ///
    /// # Panics
    /// Panics if the key is not a lowercase identifier or the rendered
    /// value is empty.
    pub fn with(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        let key = key.into();
        assert!(valid_ident(&key), "invalid spec param key {key:?}");
        let value = value.to_string();
        assert!(!value.is_empty(), "empty spec param value for key {key:?}");
        self.params.insert(key, value);
        self
    }

    /// The registry name this spec selects.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All parameters, sorted by key.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// A raw parameter value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// Rejects parameters outside `accepted` (factories call this first so
    /// typos fail loudly instead of silently using defaults).
    pub fn deny_unknown_params(&self, accepted: &[&str]) -> Result<(), ParamError> {
        for key in self.params.keys() {
            if !accepted.contains(&key.as_str()) {
                return Err(ParamError::Unknown {
                    param: key.clone(),
                    accepted: accepted.iter().map(|s| s.to_string()).collect(),
                });
            }
        }
        Ok(())
    }

    /// A typed parameter with a default.
    pub fn parsed<T: FromStr>(&self, key: &str, default: T) -> Result<T, ParamError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ParamError::Bad {
                param: key.to_string(),
                reason: format!("cannot parse {raw:?} as {}", std::any::type_name::<T>()),
            }),
        }
    }
}

impl fmt::Display for SpecBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for (i, (k, v)) in self.params.iter().enumerate() {
            write!(f, "{}{k}={}", if i == 0 { ':' } else { ',' }, escape_value(v))?;
        }
        Ok(())
    }
}

impl FromStr for SpecBody {
    type Err = SpecParseError;

    fn from_str(s: &str) -> Result<Self, SpecParseError> {
        // Trim exactly the whitespace [`escape_value`] escapes (space,
        // tab, LF, CR) — trimming more would strip value characters the
        // renderer passed through raw and break the round trip.
        let s = s.trim_matches([' ', '\t', '\n', '\r']);
        if s.is_empty() {
            return Err(SpecParseError::Empty);
        }
        let bad = |reason: &str| SpecParseError::BadSyntax {
            spec: s.to_string(),
            reason: reason.to_string(),
        };
        let (name, rest) = match s.split_once(':') {
            None => (s, None),
            Some((name, rest)) => (name, Some(rest)),
        };
        if !valid_ident(name) {
            return Err(bad("name must be a lowercase identifier"));
        }
        let mut params = BTreeMap::new();
        if let Some(rest) = rest {
            if rest.is_empty() {
                return Err(bad("trailing ':' without parameters"));
            }
            for pair in rest.split(',') {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| bad("parameters must look like key=value"))?;
                if !valid_ident(key) {
                    return Err(bad("parameter keys must be lowercase identifiers"));
                }
                if value.is_empty() {
                    return Err(bad("parameter values must be non-empty"));
                }
                let value = unescape_value(value).map_err(|reason| bad(&reason))?;
                if params.insert(key.to_string(), value).is_some() {
                    return Err(bad("duplicate parameter key"));
                }
            }
        }
        Ok(SpecBody { name: name.to_string(), params })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_bare_and_parameterized() {
        let s: SpecBody = "ref".parse().unwrap();
        assert_eq!(s.name(), "ref");
        assert_eq!(s.params().count(), 0);

        let s: SpecBody = "synth:preset=ricc,scale=0.5".parse().unwrap();
        assert_eq!(s.name(), "synth");
        assert_eq!(s.get("preset"), Some("ricc"));
        assert_eq!(s.get("scale"), Some("0.5"));
    }

    #[test]
    fn display_is_canonical_and_round_trips() {
        for text in ["fpt:k=8", "synth:orgs=5,preset=lpc,scale=0.1", "swf:path=/a/b"] {
            let spec: SpecBody = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            let again: SpecBody = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
        // Parameters sort into canonical order.
        let spec: SpecBody = "synth:scale=0.1,preset=lpc".parse().unwrap();
        assert_eq!(spec.to_string(), "synth:preset=lpc,scale=0.1");
    }

    #[test]
    fn rejects_malformed() {
        for text in ["", " ", "Ref", "x:", "x:k", "x:k=", "a b", "x:k=1,k=2", "x:=1"] {
            assert!(text.parse::<SpecBody>().is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn param_helpers() {
        let s: SpecBody = "fpt:k=8".parse().unwrap();
        assert_eq!(s.parsed("k", 0usize).unwrap(), 8);
        assert_eq!(s.parsed("horizon", 2_000u64).unwrap(), 2_000);
        assert!(matches!(
            s.deny_unknown_params(&["horizon"]),
            Err(ParamError::Unknown { .. })
        ));
        let bad: SpecBody = "fpt:k=eight".parse().unwrap();
        assert!(matches!(bad.parsed("k", 0usize), Err(ParamError::Bad { .. })));
    }

    #[test]
    #[should_panic(expected = "empty spec param value")]
    fn with_rejects_empty_values() {
        let _ = SpecBody::bare("x").with("k", "");
    }

    #[test]
    fn reserved_characters_escape_and_round_trip() {
        let spec = SpecBody::bare("swf").with("path", "/a,b=c/100%.swf");
        assert_eq!(spec.to_string(), "swf:path=/a%2cb%3dc/100%25.swf");
        let back: SpecBody = spec.to_string().parse().unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.get("path"), Some("/a,b=c/100%.swf"));
        // Canonical fixpoint: re-rendering the reparsed spec is stable.
        assert_eq!(back.to_string(), spec.to_string());
        // Upper-case escapes are accepted on input, lower-case on output.
        let upper: SpecBody = "swf:path=/a%2Cb%3Dc/100%25.swf".parse().unwrap();
        assert_eq!(upper, spec);
    }

    #[test]
    fn exotic_whitespace_values_round_trip() {
        // FromStr trims only the four escaped ASCII whitespace chars, so
        // values carrying other (unescaped) whitespace — vertical tab,
        // form feed, NBSP — pass through raw and round-trip, even at the
        // value edges or as the entire value.
        for value in ["a\u{000B}", "\u{000C}", "\u{00A0}padded\u{00A0}", "x y\u{000B}"] {
            let spec = SpecBody::bare("x").with("k", value);
            let back: SpecBody = spec.to_string().parse().unwrap();
            assert_eq!(back.get("k"), Some(value), "value {value:?} did not round-trip");
            assert_eq!(back.to_string(), spec.to_string());
        }
        // Escaped ASCII whitespace still survives trimming positions.
        let spec = SpecBody::bare("x").with("k", " lead and trail ");
        assert_eq!(spec.to_string(), "x:k=%20lead%20and%20trail%20");
        let back: SpecBody = spec.to_string().parse().unwrap();
        assert_eq!(back.get("k"), Some(" lead and trail "));
    }

    #[test]
    fn malformed_percent_escapes_are_rejected() {
        for text in ["x:k=100%", "x:k=%2", "x:k=%zz", "x:k=a%41b"] {
            assert!(
                matches!(text.parse::<SpecBody>(), Err(SpecParseError::BadSyntax { .. })),
                "{text:?} should not parse"
            );
        }
    }

    proptest! {
        /// escape ∘ parse identity: any value built from the alphabet
        /// (reserved characters included) survives the render/reparse
        /// round trip exactly.
        #[test]
        fn prop_escape_parse_identity(
            picks in proptest::collection::vec(0usize..12, 1..40)
        ) {
            const ALPHABET: [char; 12] =
                ['a', 'z', '0', '9', '/', '.', '-', '_', '%', ',', '=', ' '];
            let raw: String = picks.iter().map(|&i| ALPHABET[i]).collect();
            prop_assert_eq!(unescape_value(&escape_value(&raw)).unwrap(), raw.clone());
            let spec = SpecBody::bare("x").with("k", &raw);
            let back: SpecBody = spec.to_string().parse().unwrap();
            prop_assert_eq!(back.get("k"), Some(raw.as_str()));
            prop_assert_eq!(back.to_string(), spec.to_string());
        }
    }
}
