//! The strategy-proof utility `ψ_sp` (Theorem 4.1, Equation 3) and an
//! incremental tracker for online schedulers.
//!
//! `ψ_sp(σ, t) = Σ_{(s,p)∈σ, s≤t} min(p, t−s) · (t − (s + min(s+p−1, t−1))/2)`
//!
//! Interpretation: a job of length `p` started at `s` is `p` unit-size
//! parts occupying time slots `s, s+1, …, s+p−1`; a part executed in slot
//! `i < t` is worth `t − i`. The value is therefore a throughput measure
//! that rewards early execution, is indifferent to how work is packaged
//! into jobs (strategy resistance), and strictly rewards completing more
//! work (task-count anonymity).

use super::{sp_vector, Util, Utility};
use crate::model::{OrgId, Time, Trace};
use crate::schedule::Schedule;

/// Exact `ψ_sp` contribution of one scheduled job `(start, proc_time)` at
/// time `t`:
///
/// `cnt·(2t − 2s − cnt + 1)/2` with `cnt = min(p, t − s)` (0 if `s ≥ t`).
///
/// The product is always even, so the division is exact.
#[inline]
pub fn sp_value(start: Time, proc_time: Time, t: Time) -> Util {
    let cnt = proc_time.min(t.saturating_sub(start)) as Util;
    if cnt == 0 {
        return 0;
    }
    let (t, s) = (t as Util, start as Util);
    cnt * (2 * t - 2 * s - cnt + 1) / 2
}

/// `ψ_sp` of a bag of job parts given as `(start, proc_time)` pairs — the
/// single-organization form `ψ(σ_t)` used throughout Section 4.
pub fn sp_value_of_parts(parts: &[(Time, Time)], t: Time) -> Util {
    parts.iter().map(|&(s, p)| sp_value(s, p, t)).sum()
}

/// The strategy-proof utility as a [`Utility`] implementation (for generic
/// code and reports; exact integer code paths use [`sp_value`] directly).
#[derive(Copy, Clone, Debug, Default)]
pub struct SpUtility;

impl Utility for SpUtility {
    fn name(&self) -> &'static str {
        "psi_sp"
    }

    fn value(&self, _trace: &Trace, schedule: &Schedule, org: OrgId, t: Time) -> f64 {
        schedule.entries_of(org).map(|e| sp_value(e.start, e.proc_time, t)).sum::<Util>()
            as f64
    }

    fn org_values(&self, trace: &Trace, schedule: &Schedule, t: Time) -> Vec<f64> {
        // One pass (the `sp_vector` sweep) instead of a per-org filter.
        sp_vector(trace, schedule, t).into_iter().map(|v| v as f64).collect()
    }
}

/// Incremental, exact `ψ_sp` tracker for online schedulers.
///
/// Feed it starts and completions as they are observed; query
/// [`SpTracker::value_at`] at any `t` not earlier than the last observed
/// event. Completed jobs contribute `n·t − Σ slots` (linear in `t`);
/// running jobs contribute `Δ(Δ+1)/2` with `Δ = t − start` — the same
/// closed forms the paper's Figure 9 computes incrementally.
///
/// The tracker never needs processing times, so it is available to
/// non-clairvoyant schedulers.
#[derive(Clone, Debug, Default)]
pub struct SpTracker {
    /// Σ p over completed jobs.
    completed_units: Util,
    /// Σ of the executed slot indices of completed jobs.
    completed_slot_sum: Util,
    /// Start times of currently running jobs (for completion matching).
    running: Vec<Time>,
    /// Moments of the running starts, so `value_at` is O(1):
    /// Σ_running Δ(Δ+1)/2 with Δ = t−s expands to
    /// ½·(R·(t²+t) − (2t+1)·Σs + Σs²).
    run_s_sum: Util,
    run_s2_sum: Util,
}

impl SpTracker {
    /// A fresh tracker with nothing observed.
    pub fn new() -> Self {
        SpTracker::default()
    }

    /// Records a job start at `t`.
    pub fn on_start(&mut self, t: Time) {
        self.running.push(t);
        let s = t as Util;
        self.run_s_sum += s;
        self.run_s2_sum += s * s;
    }

    /// Records the completion at `t` of the job started at `start`.
    ///
    /// # Panics
    /// Panics if no running job with that start time is tracked, or if
    /// `t <= start`.
    pub fn on_complete(&mut self, start: Time, t: Time) {
        assert!(t > start, "completion must follow start");
        let pos = self
            .running
            .iter()
            .position(|&s| s == start)
            .expect("completion for an untracked start");
        self.running.swap_remove(pos);
        let p = (t - start) as Util;
        let (s, c) = (start as Util, t as Util);
        self.completed_units += p;
        // Σ_{i=s}^{c-1} i = p (s + c - 1) / 2, always an integer.
        self.completed_slot_sum += p * (s + c - 1) / 2;
        self.run_s_sum -= s;
        self.run_s2_sum -= s * s;
    }

    /// `ψ_sp` at time `t` (≥ every observed event time): completed parts
    /// plus the elapsed parts of running jobs. O(1).
    pub fn value_at(&self, t: Time) -> Util {
        let t = t as Util;
        let completed = self.completed_units * t - self.completed_slot_sum;
        let r = self.running.len() as Util;
        // Σ Δ(Δ+1)/2 over running jobs, Δ = t − s (all starts are ≤ t by
        // the tracker's contract, so no clamping is needed).
        let running =
            (r * (t * t + t) - (2 * t + 1) * self.run_s_sum + self.run_s2_sum) / 2;
        completed + running
    }

    /// Total CPU time consumed by observed jobs up to `t`: completed work
    /// plus elapsed time of running jobs. This is the "resource already
    /// assigned" quantity the fair-share baseline balances. O(1).
    pub fn cpu_time_at(&self, t: Time) -> Util {
        self.completed_units + self.running.len() as Util * t as Util - self.run_s_sum
    }

    /// Number of currently running jobs.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{JobId, MachineId};
    use crate::schedule::ScheduledJob;
    use proptest::prelude::*;

    /// Naive per-unit reference implementation: Σ over executed slots i<t of (t-i).
    fn sp_naive(start: Time, p: Time, t: Time) -> Util {
        (start..start + p).filter(|&i| i < t).map(|i| (t - i) as Util).sum()
    }

    #[test]
    fn closed_form_examples() {
        // Job (s=0, p=3) at t=13: 13+12+11 = 36.
        assert_eq!(sp_value(0, 3, 13), 36);
        // Not yet started.
        assert_eq!(sp_value(10, 5, 10), 0);
        assert_eq!(sp_value(10, 5, 3), 0);
        // Exactly one unit done.
        assert_eq!(sp_value(10, 5, 11), 1);
    }

    #[test]
    fn figure2_worked_example() {
        // The paper's Figure 2: 9 jobs of O(1) on 3 machines plus one job of
        // O(2); starts reconstructed from the figure. O(1)'s utility is 262
        // at t=13 and 297 at t=14; flow time at 14 is 70.
        // O(1) jobs (start, p): J1(0,3) J2(0,4) J3(0,3) J4(3,6) J5(3,3)
        // J6(4,6) J7(6,3) J8(9,3) J9(10,4). (J9 delayed by O(2)'s job.)
        let o1: Vec<(Time, Time)> =
            vec![(0, 3), (0, 4), (0, 3), (3, 6), (3, 3), (4, 6), (6, 3), (9, 3), (10, 4)];
        assert_eq!(sp_value_of_parts(&o1, 13), 262);
        assert_eq!(sp_value_of_parts(&o1, 14), 297);

        // "If there was no job J(2)1, J9 would start at 9 instead of 10 and
        // ψ_sp at 14 would increase by 4."
        let mut early = o1.clone();
        *early.last_mut().unwrap() = (9, 4);
        assert_eq!(sp_value_of_parts(&early, 14) - sp_value_of_parts(&o1, 14), 4);

        // "If J6 was started one time unit later, the utility would
        // decrease by 6."
        let mut late6 = o1.clone();
        late6[5] = (5, 6);
        assert_eq!(sp_value_of_parts(&o1, 14) - sp_value_of_parts(&late6, 14), 6);

        // "If J9 was not scheduled at all, ψ_sp would decrease by 10."
        let without9 = &o1[..8];
        assert_eq!(sp_value_of_parts(&o1, 14) - sp_value_of_parts(without9, 14), 10);
    }

    #[test]
    fn tracker_matches_closed_form() {
        let mut tr = SpTracker::new();
        tr.on_start(2);
        assert_eq!(tr.value_at(2), 0);
        assert_eq!(tr.value_at(5), sp_naive(2, 3, 5)); // 3 elapsed units
        tr.on_complete(2, 6); // p = 4
        assert_eq!(tr.value_at(6), sp_value(2, 4, 6));
        assert_eq!(tr.value_at(10), sp_value(2, 4, 10));
        tr.on_start(8);
        assert_eq!(tr.value_at(10), sp_value(2, 4, 10) + sp_naive(8, 2, 10));
    }

    #[test]
    fn tracker_cpu_time() {
        let mut tr = SpTracker::new();
        tr.on_start(0);
        tr.on_complete(0, 4);
        tr.on_start(4);
        assert_eq!(tr.cpu_time_at(7), 4 + 3);
        assert_eq!(tr.running_count(), 1);
    }

    #[test]
    #[should_panic]
    fn tracker_unknown_completion_panics() {
        let mut tr = SpTracker::new();
        tr.on_complete(0, 1);
    }

    #[test]
    fn utility_trait_matches_exact() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 0, 3);
        let t = b.build().unwrap();
        let s: Schedule = [ScheduledJob {
            job: JobId(0),
            org: a,
            machine: MachineId(0),
            start: 0,
            proc_time: 3,
        }]
        .into_iter()
        .collect();
        let u = SpUtility;
        assert_eq!(u.value(&t, &s, a, 10) as Util, sp_value(0, 3, 10));
        assert!(u.maximizing());
    }

    proptest! {
        #[test]
        fn prop_closed_form_equals_naive(s in 0u64..200, p in 1u64..100, t in 0u64..400) {
            prop_assert_eq!(sp_value(s, p, t), sp_naive(s, p, t));
        }

        // Axiom 1 (start-time anonymity): delaying any job by one unit
        // decreases the utility by exactly the number of its units executed
        // before t (constant across schedules once fully executed).
        #[test]
        fn prop_delay_decreases(s in 0u64..50, p in 1u64..20, t in 100u64..200) {
            let early = sp_value(s, p, t);
            let late = sp_value(s + 1, p, t);
            // Fully completed in both cases (t >= 100 > s+p+1): difference p.
            prop_assert_eq!(early - late, p as Util);
        }

        // Axiom 3 (strategy resistance): splitting a job changes nothing.
        #[test]
        fn prop_split_invariance(
            s in 0u64..100, p1 in 1u64..30, p2 in 1u64..30, t in 0u64..300
        ) {
            let merged = sp_value(s, p1 + p2, t);
            let split = sp_value(s, p1, t) + sp_value(s + p1, p2, t);
            prop_assert_eq!(merged, split);
        }

        // Monotone in t, and zero before the start.
        #[test]
        fn prop_monotone_in_t(s in 0u64..50, p in 1u64..30, t in 0u64..200) {
            prop_assert!(sp_value(s, p, t + 1) >= sp_value(s, p, t));
            prop_assert_eq!(sp_value(s, p, s), 0);
        }

        // Tracker agrees with the closed form over random job sets.
        #[test]
        fn prop_tracker_agrees(
            jobs in proptest::collection::vec((0u64..50, 1u64..20), 0..20),
            extra in 0u64..30,
        ) {
            // Sequentialize jobs on one machine so they never overlap; the
            // tracker doesn't care, but this keeps starts/completions causal.
            let mut tr = SpTracker::new();
            let mut clock = 0u64;
            let mut parts = Vec::new();
            for (gap, p) in jobs {
                let s = clock + gap;
                tr.on_start(s);
                tr.on_complete(s, s + p);
                parts.push((s, p));
                clock = s + p;
            }
            let t = clock + extra;
            prop_assert_eq!(tr.value_at(t), sp_value_of_parts(&parts, t));
            prop_assert_eq!(tr.cpu_time_at(t), parts.iter().map(|&(_, p)| p as Util).sum::<Util>());
        }
    }
}
