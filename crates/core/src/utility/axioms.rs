//! Executable checkers for the three utility axioms of Section 4.
//!
//! The axioms characterize `ψ_sp` uniquely (Theorem 4.1):
//!
//! 1. **Task anonymity (starting times)** — advancing any single task by one
//!    time unit is equally profitable regardless of the task and schedule.
//! 2. **Task anonymity (number of tasks)** — adding a completed task is
//!    equally profitable in every schedule.
//! 3. **Strategy resistance** — merging or splitting jobs does not change
//!    the utility.
//!
//! The checkers operate on single-organization schedules given as
//! `(start, proc_time)` part lists, and evaluate a caller-supplied utility
//! `ψ(parts, t)`. They are used in tests to show `ψ_sp` satisfies all three
//! while flow time fails (which is the paper's motivation for `ψ_sp`).

use crate::model::Time;

/// Outcome of an axiom check over a set of probes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AxiomReport {
    /// Name of the axiom checked.
    pub axiom: &'static str,
    /// Probes that violated the axiom, described textually.
    pub violations: Vec<String>,
}

impl AxiomReport {
    /// Whether the axiom held on every probe.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

fn with_part(parts: &[(Time, Time)], extra: (Time, Time)) -> Vec<(Time, Time)> {
    let mut v = parts.to_vec();
    v.push(extra);
    v
}

/// Axiom 1: for all probes `(σ, s)` and `(σ', s')` with `s, s' ≤ t−1`,
/// `ψ(σ∪{(s,p)}) − ψ(σ∪{(s+1,p)})` must be a positive constant.
pub fn check_start_anonymity(
    psi: impl Fn(&[(Time, Time)], Time) -> i128,
    schedules: &[Vec<(Time, Time)>],
    starts: &[Time],
    p: Time,
    t: Time,
) -> AxiomReport {
    let mut reference: Option<i128> = None;
    let mut violations = Vec::new();
    for sigma in schedules {
        for &s in starts {
            if s + 1 > t.saturating_sub(1) {
                continue;
            }
            let gain =
                psi(&with_part(sigma, (s, p)), t) - psi(&with_part(sigma, (s + 1, p)), t);
            if gain <= 0 {
                violations.push(format!(
                    "advancing a task from {s}+1 to {s} in {sigma:?} gains {gain} (must be > 0)"
                ));
            }
            match reference {
                None => reference = Some(gain),
                Some(r) if r != gain => violations.push(format!(
                    "gain {gain} at start {s} in {sigma:?} differs from reference {r}"
                )),
                _ => {}
            }
        }
    }
    AxiomReport { axiom: "task anonymity (starting times)", violations }
}

/// Axiom 2: `ψ(σ∪{(s,p)}) − ψ(σ)` must be a positive constant across
/// schedules for a fixed `(s, p)` with `s ≤ t−1`.
pub fn check_count_anonymity(
    psi: impl Fn(&[(Time, Time)], Time) -> i128,
    schedules: &[Vec<(Time, Time)>],
    s: Time,
    p: Time,
    t: Time,
) -> AxiomReport {
    let mut reference: Option<i128> = None;
    let mut violations = Vec::new();
    if s < t {
        for sigma in schedules {
            let gain = psi(&with_part(sigma, (s, p)), t) - psi(sigma, t);
            if gain <= 0 {
                violations.push(format!(
                    "adding a task to {sigma:?} gains {gain} (must be > 0)"
                ));
            }
            match reference {
                None => reference = Some(gain),
                Some(r) if r != gain => violations
                    .push(format!("gain {gain} in {sigma:?} differs from reference {r}")),
                _ => {}
            }
        }
    }
    AxiomReport { axiom: "task anonymity (number of tasks)", violations }
}

/// Axiom 3 (marginal form): the marginal utility of adding `(s, p1)` and
/// `(s+p1, p2)` separately equals that of adding the merged `(s, p1+p2)`:
///
/// `[ψ(σ∪{(s,p1)}) − ψ(σ)] + [ψ(σ∪{(s+p1,p2)}) − ψ(σ)] =
///  ψ(σ∪{(s,p1+p2)}) − ψ(σ)`.
///
/// (The paper states the property with `ψ(σ_t)` implicit on both sides;
/// the marginal form is the schedule-independent reading, and coincides
/// with the paper's equation when `ψ(σ) = 0`.)
pub fn check_strategy_resistance(
    psi: impl Fn(&[(Time, Time)], Time) -> i128,
    schedules: &[Vec<(Time, Time)>],
    probes: &[(Time, Time, Time)],
    t: Time,
) -> AxiomReport {
    let mut violations = Vec::new();
    for sigma in schedules {
        let base = psi(sigma, t);
        for &(s, p1, p2) in probes {
            let split = (psi(&with_part(sigma, (s, p1)), t) - base)
                + (psi(&with_part(sigma, (s + p1, p2)), t) - base);
            let merged = psi(&with_part(sigma, (s, p1 + p2)), t) - base;
            if split != merged {
                violations.push(format!(
                    "splitting ({s},{}) into ({s},{p1})+({},{p2}) changes utility: {split} vs {merged}",
                    p1 + p2,
                    s + p1
                ));
            }
        }
    }
    AxiomReport { axiom: "strategy resistance", violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::sp::sp_value_of_parts;

    fn probe_schedules() -> Vec<Vec<(Time, Time)>> {
        vec![vec![], vec![(0, 3)], vec![(0, 1), (5, 2)], vec![(2, 4), (10, 1), (11, 6)]]
    }

    #[test]
    fn sp_satisfies_start_anonymity() {
        let r = check_start_anonymity(
            sp_value_of_parts,
            &probe_schedules(),
            &[0, 3, 7, 15],
            4,
            50,
        );
        assert!(r.holds(), "{:?}", r.violations);
    }

    #[test]
    fn sp_satisfies_count_anonymity() {
        let r = check_count_anonymity(sp_value_of_parts, &probe_schedules(), 3, 5, 50);
        assert!(r.holds(), "{:?}", r.violations);
    }

    #[test]
    fn sp_satisfies_strategy_resistance() {
        let r = check_strategy_resistance(
            sp_value_of_parts,
            &probe_schedules(),
            &[(0, 1, 1), (2, 3, 4), (10, 5, 2)],
            50,
        );
        assert!(r.holds(), "{:?}", r.violations);
    }

    /// Flow time (as an integer, negated to be a maximization objective)
    /// violates both task-count anonymity and strategy resistance —
    /// the paper's argument for why it cannot be used.
    fn neg_flow(parts: &[(Time, Time)], t: Time) -> i128 {
        // Release times all 0: flow of a completed job = completion.
        -(parts
            .iter()
            .filter(|&&(s, p)| s + p <= t)
            .map(|&(s, p)| (s + p) as i128)
            .sum::<i128>())
    }

    #[test]
    fn flow_time_violates_count_anonymity() {
        // Adding a completed task *decreases* −flow (gain < 0): violation.
        let r = check_count_anonymity(neg_flow, &probe_schedules(), 3, 5, 50);
        assert!(!r.holds());
    }

    #[test]
    fn flow_time_violates_strategy_resistance() {
        // Splitting a job reduces total flow: violation.
        let r = check_strategy_resistance(neg_flow, &probe_schedules(), &[(0, 2, 3)], 50);
        assert!(!r.holds());
    }

    #[test]
    fn flow_time_satisfies_start_anonymity() {
        // Flow time *does* satisfy axiom 1 (delaying a completed job by one
        // unit costs exactly one unit of flow).
        let r = check_start_anonymity(neg_flow, &probe_schedules(), &[0, 3, 7], 4, 50);
        assert!(r.holds(), "{:?}", r.violations);
    }
}
