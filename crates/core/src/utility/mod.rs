//! Utility functions: the strategy-proof `ψ_sp` and classic alternatives.
//!
//! A utility function `ψ(σ, O, t)` measures an organization's satisfaction
//! with schedule `σ` up to time `t` (Section 2 of the paper). The paper's
//! central observation (Section 4) is that the utility must be chosen so
//! that organizations cannot profit from reshaping their workload — and
//! that, up to affine constants, exactly one such function exists:
//! [`SpUtility`] (Theorem 4.1).
//!
//! All utilities are **envy-free** (depend only on the organization's own
//! jobs) and **non-clairvoyant** (depend only on job parts completed by
//! `t`).

mod axioms;
mod classic;
mod sp;

pub use axioms::{
    check_count_anonymity, check_start_anonymity, check_strategy_resistance, AxiomReport,
};
pub use classic::{FlowTime, Makespan, ResourceShare, Tardiness};
pub use sp::{sp_value, sp_value_of_parts, SpTracker, SpUtility};

use crate::model::{OrgId, Time, Trace};
use crate::schedule::Schedule;

/// Exact integer utility value.
///
/// `ψ_sp` over integer times is always an integer (the `/2` in Equation 3
/// always cancels), so fairness bookkeeping can be exact. `i128` leaves
/// ample headroom for the NP-hardness reduction, whose values are scaled by
/// `(k+2)!` (see `reduction`).
pub type Util = i128;

/// A utility function over schedules, in the sense of Section 2.
///
/// Implementations receive the trace (for releases/deadlines/cluster data)
/// and the schedule, and must respect non-clairvoyance: only job parts
/// executed strictly before `t` may influence the value.
pub trait Utility {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;

    /// `ψ(σ, org, t)`.
    fn value(&self, trace: &Trace, schedule: &Schedule, org: OrgId, t: Time) -> f64;

    /// Whether larger values are better. `ψ_sp` and resource share are
    /// maximization objectives; flow time, makespan and tardiness are
    /// minimization objectives (the paper converts by taking the inverse).
    fn maximizing(&self) -> bool {
        true
    }

    /// The utility vector of all organizations.
    fn org_values(&self, trace: &Trace, schedule: &Schedule, t: Time) -> Vec<f64> {
        (0..trace.n_orgs())
            .map(|u| self.value(trace, schedule, OrgId(u as u32), t))
            .collect()
    }

    /// The characteristic value `v(σ, t) = Σ_u ψ(σ, u, t)`.
    fn coalition_value(&self, trace: &Trace, schedule: &Schedule, t: Time) -> f64 {
        self.org_values(trace, schedule, t).iter().sum()
    }
}

/// Exact `ψ_sp` vector for all organizations (integer arithmetic).
pub fn sp_vector(trace: &Trace, schedule: &Schedule, t: Time) -> Vec<Util> {
    let mut psi = vec![0 as Util; trace.n_orgs()];
    for e in schedule.entries() {
        psi[e.org.index()] += sp_value(e.start, e.proc_time, t);
    }
    psi
}
