//! Classic scheduling utilities: flow time, makespan, tardiness, resource
//! share.
//!
//! These are the functions Section 4 argues **against** using directly:
//! flow time rewards empty schedules and incentivizes splitting jobs;
//! makespan and tardiness similarly fail the anonymity/strategy axioms.
//! They are provided for comparison experiments and for the generic REF
//! algorithm, which accepts any [`Utility`].

use super::Utility;
use crate::model::{OrgId, Time, Trace};
use crate::schedule::Schedule;

/// Total flow time of the organization's **completed** jobs:
/// `Σ (completion − release)` over jobs with `completion ≤ t`.
///
/// A *minimization* objective. Scheduling nothing yields the optimal value
/// of 0 — the pathology the paper's second axiom rules out.
#[derive(Copy, Clone, Debug, Default)]
pub struct FlowTime;

impl Utility for FlowTime {
    fn name(&self) -> &'static str {
        "flow_time"
    }

    fn value(&self, trace: &Trace, schedule: &Schedule, org: OrgId, t: Time) -> f64 {
        schedule
            .entries_of(org)
            .filter(|e| e.completion() <= t)
            .map(|e| (e.completion() - trace.job(e.job).release) as f64)
            .sum()
    }

    fn org_values(&self, trace: &Trace, schedule: &Schedule, t: Time) -> Vec<f64> {
        // One pass over all entries instead of a per-org filter (O(E) vs
        // O(E·k)); per-org accumulation order matches `value`, so the f64
        // sums are bit-identical.
        let mut out = vec![0.0; trace.n_orgs()];
        for e in schedule.entries() {
            if e.completion() <= t {
                out[e.org.index()] += (e.completion() - trace.job(e.job).release) as f64;
            }
        }
        out
    }

    fn maximizing(&self) -> bool {
        false
    }
}

/// Makespan: the largest completion time among the organization's completed
/// jobs (0 if none). A minimization objective.
#[derive(Copy, Clone, Debug, Default)]
pub struct Makespan;

impl Utility for Makespan {
    fn name(&self) -> &'static str {
        "makespan"
    }

    fn value(&self, _trace: &Trace, schedule: &Schedule, org: OrgId, t: Time) -> f64 {
        schedule
            .entries_of(org)
            .map(|e| e.completion())
            .filter(|&c| c <= t)
            .max()
            .unwrap_or(0) as f64
    }

    fn org_values(&self, trace: &Trace, schedule: &Schedule, t: Time) -> Vec<f64> {
        let mut max = vec![0 as Time; trace.n_orgs()];
        for e in schedule.entries() {
            let c = e.completion();
            if c <= t {
                let m = &mut max[e.org.index()];
                *m = (*m).max(c);
            }
        }
        max.into_iter().map(|c| c as f64).collect()
    }

    fn maximizing(&self) -> bool {
        false
    }
}

/// Total tardiness of completed jobs: `Σ max(0, completion − deadline)`.
/// Jobs without a deadline contribute 0. A minimization objective.
#[derive(Copy, Clone, Debug, Default)]
pub struct Tardiness;

impl Utility for Tardiness {
    fn name(&self) -> &'static str {
        "tardiness"
    }

    fn value(&self, trace: &Trace, schedule: &Schedule, org: OrgId, t: Time) -> f64 {
        schedule
            .entries_of(org)
            .filter(|e| e.completion() <= t)
            .filter_map(|e| {
                trace.job(e.job).deadline.map(|d| e.completion().saturating_sub(d) as f64)
            })
            .sum()
    }

    fn org_values(&self, trace: &Trace, schedule: &Schedule, t: Time) -> Vec<f64> {
        let deadlines = trace.deadlines();
        let mut out = vec![0.0; trace.n_orgs()];
        for e in schedule.entries() {
            let c = e.completion();
            if c <= t {
                if let Some(d) = deadlines[e.job.index()] {
                    out[e.org.index()] += c.saturating_sub(d) as f64;
                }
            }
        }
        out
    }

    fn maximizing(&self) -> bool {
        false
    }
}

/// The fraction of total pool capacity `m·t` consumed by the organization's
/// job parts executed before `t` — the quantity distributive fairness
/// allocates. A maximization objective.
#[derive(Copy, Clone, Debug, Default)]
pub struct ResourceShare;

impl Utility for ResourceShare {
    fn name(&self) -> &'static str {
        "resource_share"
    }

    fn value(&self, trace: &Trace, schedule: &Schedule, org: OrgId, t: Time) -> f64 {
        if t == 0 {
            return 0.0;
        }
        let busy: Time = schedule.entries_of(org).map(|e| e.units_before(t)).sum();
        let m = trace.cluster_info().n_machines();
        busy as f64 / (m as f64 * t as f64)
    }

    fn org_values(&self, trace: &Trace, schedule: &Schedule, t: Time) -> Vec<f64> {
        if t == 0 {
            return vec![0.0; trace.n_orgs()];
        }
        let mut busy = vec![0 as Time; trace.n_orgs()];
        for e in schedule.entries() {
            busy[e.org.index()] += e.units_before(t);
        }
        let m = trace.cluster_info().n_machines();
        busy.into_iter().map(|b| b as f64 / (m as f64 * t as f64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{JobId, MachineId};
    use crate::schedule::ScheduledJob;

    fn setup() -> (Trace, Schedule) {
        let mut b = Trace::builder();
        let a = b.org("a", 2);
        b.job(a, 0, 4);
        b.job_with_deadline(a, 1, 2, 2);
        let t = b.build().unwrap();
        let s: Schedule = [
            ScheduledJob {
                job: JobId(0),
                org: a,
                machine: MachineId(0),
                start: 0,
                proc_time: 4,
            },
            ScheduledJob {
                job: JobId(1),
                org: a,
                machine: MachineId(1),
                start: 1,
                proc_time: 2,
            },
        ]
        .into_iter()
        .collect();
        (t, s)
    }

    #[test]
    fn flow_time_counts_completed_only() {
        let (t, s) = setup();
        let f = FlowTime;
        // At t=3: only job1 completed (c=3, r=1) -> flow 2.
        assert_eq!(f.value(&t, &s, OrgId(0), 3), 2.0);
        // At t=4: job0 completed too (c=4, r=0) -> flow 2 + 4 = 6.
        assert_eq!(f.value(&t, &s, OrgId(0), 4), 6.0);
        assert!(!f.maximizing());
    }

    #[test]
    fn makespan_max_completion() {
        let (t, s) = setup();
        let m = Makespan;
        assert_eq!(m.value(&t, &s, OrgId(0), 3), 3.0);
        assert_eq!(m.value(&t, &s, OrgId(0), 10), 4.0);
        assert_eq!(m.value(&t, &s, OrgId(0), 0), 0.0);
    }

    #[test]
    fn tardiness_uses_deadline() {
        let (t, s) = setup();
        let td = Tardiness;
        // Job1: deadline 2, completes 3 -> tardiness 1. Job0 has no deadline.
        assert_eq!(td.value(&t, &s, OrgId(0), 10), 1.0);
        assert_eq!(td.value(&t, &s, OrgId(0), 2), 0.0);
    }

    #[test]
    fn resource_share_fraction() {
        let (t, s) = setup();
        let r = ResourceShare;
        // At t=4: units = 4 + 2 = 6 of capacity 2*4=8.
        assert!((r.value(&t, &s, OrgId(0), 4) - 0.75).abs() < 1e-12);
        assert_eq!(r.value(&t, &s, OrgId(0), 0), 0.0);
    }

    #[test]
    fn empty_schedule_flow_time_is_zero() {
        // The pathology motivating axiom 2: an empty schedule minimizes flow.
        let (t, _) = setup();
        let empty = Schedule::new();
        assert_eq!(FlowTime.value(&t, &empty, OrgId(0), 100), 0.0);
    }

    mod properties {
        use super::*;
        use crate::utility::SpUtility;
        use proptest::prelude::*;

        /// Arbitrary valid (trace, schedule) pairs: per-org jobs with
        /// deadlines sometimes set, each scheduled on its own machine at a
        /// start no earlier than its release.
        fn arb_run() -> impl Strategy<Value = (Trace, Schedule)> {
            (
                proptest::collection::vec(
                    (0u32..5, 0u64..30, 1u64..15, 0u64..10, 0u8..2),
                    1..30,
                ),
                2u32..6,
            )
                .prop_map(|(specs, n_orgs)| {
                    let mut b = Trace::builder();
                    for u in 0..n_orgs {
                        b.org(format!("org{u}"), 1);
                    }
                    for &(u, r, p, d, has_d) in &specs {
                        if has_d == 1 {
                            b.job_with_deadline(OrgId(u % n_orgs), r, p, r + p + d);
                        } else {
                            b.job(OrgId(u % n_orgs), r, p);
                        }
                    }
                    let trace = b.build().unwrap();
                    let schedule: Schedule = trace
                        .jobs()
                        .iter()
                        .enumerate()
                        .map(|(i, j)| ScheduledJob {
                            job: j.id,
                            org: j.org,
                            machine: MachineId(i as u32),
                            start: j.release + (i as Time % 7),
                            proc_time: j.proc_time,
                        })
                        .collect();
                    (trace, schedule)
                })
        }

        proptest! {
            /// The single-pass `org_values` overrides must agree exactly
            /// (bit-identical f64) with the retained per-org naive oracle
            /// `(0..k).map(|u| value(u))` — the pre-optimization default.
            #[test]
            fn prop_org_values_match_per_org_oracle(
                (trace, schedule) in arb_run(),
                t in 0u64..60,
            ) {
                fn oracle<U: Utility>(
                    u: &U, trace: &Trace, s: &Schedule, t: Time,
                ) -> Vec<f64> {
                    (0..trace.n_orgs())
                        .map(|o| u.value(trace, s, OrgId(o as u32), t))
                        .collect()
                }
                let cases: [&dyn Utility; 5] = [
                    &FlowTime, &Makespan, &Tardiness, &ResourceShare, &SpUtility,
                ];
                for u in cases {
                    let fast = u.org_values(&trace, &schedule, t);
                    let naive: Vec<f64> = (0..trace.n_orgs())
                        .map(|o| u.value(&trace, &schedule, OrgId(o as u32), t))
                        .collect();
                    prop_assert_eq!(
                        &fast, &naive,
                        "{} diverged at t={}", u.name(), t
                    );
                }
                // Generic call through the static oracle too (exercises
                // the monomorphized path).
                prop_assert_eq!(
                    FlowTime.org_values(&trace, &schedule, t),
                    oracle(&FlowTime, &trace, &schedule, t)
                );
            }
        }
    }
}
