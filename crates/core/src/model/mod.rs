//! The multi-organizational scheduling model: organizations, machines,
//! jobs and traces.

mod ids;
mod job;
mod trace;

pub use ids::{JobId, MachineId, OrgId};
pub use job::{Job, JobMeta};
pub use trace::{ClusterInfo, OrgSpec, Trace, TraceBuilder, TraceError};

/// Discrete time, as in the paper's model (`T` is a discrete set of time
/// moments). Job releases, starts and processing times are all measured in
/// these units.
pub type Time = u64;
