//! Traces: the full input to a simulation — organizations, their machines,
//! and the job stream.

use super::{Job, JobId, MachineId, OrgId, Time};
use std::fmt;

/// An organization's static description: a name and the number of machines
/// it contributes to the common pool.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OrgSpec {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Number of identical machines contributed.
    pub n_machines: usize,
}

impl OrgSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, n_machines: usize) -> Self {
        OrgSpec { name: name.into(), n_machines }
    }
}

/// Static cluster facts derived from a trace: machine ownership and counts.
///
/// Machines are laid out organization by organization: organization 0 owns
/// machines `0..m_0`, organization 1 owns `m_0..m_0+m_1`, and so on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterInfo {
    machine_owner: Vec<OrgId>,
    org_machines: Vec<usize>,
}

impl ClusterInfo {
    /// Builds cluster info from per-organization machine counts.
    pub fn new(org_machines: Vec<usize>) -> Self {
        let mut machine_owner = Vec::with_capacity(org_machines.iter().sum());
        for (org, &m) in org_machines.iter().enumerate() {
            machine_owner.extend(std::iter::repeat_n(OrgId(org as u32), m));
        }
        ClusterInfo { machine_owner, org_machines }
    }

    /// Number of organizations.
    #[inline]
    pub fn n_orgs(&self) -> usize {
        self.org_machines.len()
    }

    /// Total number of machines in the pool.
    #[inline]
    pub fn n_machines(&self) -> usize {
        self.machine_owner.len()
    }

    /// The organization owning a machine.
    #[inline]
    pub fn owner(&self, machine: MachineId) -> OrgId {
        self.machine_owner[machine.index()]
    }

    /// Number of machines contributed by an organization.
    #[inline]
    pub fn machines_of(&self, org: OrgId) -> usize {
        self.org_machines[org.index()]
    }

    /// Per-organization machine counts.
    #[inline]
    pub fn org_machines(&self) -> &[usize] {
        &self.org_machines
    }

    /// The fair-share target of an organization: the fraction of the pool it
    /// contributes (the share used by the fair-share baselines, Section 7.1).
    #[inline]
    pub fn share(&self, org: OrgId) -> f64 {
        self.machines_of(org) as f64 / self.n_machines() as f64
    }
}

/// Errors detected by [`Trace::validate`] / [`TraceBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A job references an organization index that does not exist.
    UnknownOrg {
        /// The offending job.
        job: JobId,
        /// The referenced organization.
        org: OrgId,
    },
    /// A job has zero processing time.
    ZeroProcTime {
        /// The offending job.
        job: JobId,
    },
    /// The trace has no machines at all.
    NoMachines,
    /// Job ids are not the contiguous sequence `0..n`.
    NonContiguousIds {
        /// Position in the job list where the mismatch was found.
        position: usize,
    },
    /// Jobs are not sorted by release time.
    UnsortedJobs {
        /// Position of the first out-of-order job.
        position: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownOrg { job, org } => {
                write!(f, "job {job} references unknown organization {org}")
            }
            TraceError::ZeroProcTime { job } => {
                write!(f, "job {job} has zero processing time")
            }
            TraceError::NoMachines => write!(f, "trace has no machines"),
            TraceError::NonContiguousIds { position } => {
                write!(f, "job ids are not contiguous at position {position}")
            }
            TraceError::UnsortedJobs { position } => {
                write!(f, "jobs not sorted by release time at position {position}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A complete simulation input: organizations (with machine counts) and the
/// job stream, sorted by release time.
///
/// Per-organization FIFO order is the order of appearance in the sorted job
/// list (ties in release time keep insertion order — a stable sort), which
/// matches the paper's "jobs of each individual organization should be
/// started in the order in which they are presented".
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    orgs: Vec<OrgSpec>,
    jobs: Vec<Job>,
}

impl Trace {
    /// Starts building a trace.
    pub fn builder() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Number of organizations.
    #[inline]
    pub fn n_orgs(&self) -> usize {
        self.orgs.len()
    }

    /// Number of jobs.
    #[inline]
    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// All organizations.
    #[inline]
    pub fn orgs(&self) -> &[OrgSpec] {
        &self.orgs
    }

    /// All jobs, sorted by release time; `jobs()[i].id == JobId(i)`.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// A single job by id.
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Jobs of one organization, in FIFO order.
    pub fn jobs_of(&self, org: OrgId) -> impl Iterator<Item = &Job> {
        self.jobs.iter().filter(move |j| j.org == org)
    }

    /// Derives the cluster layout (machine ownership).
    pub fn cluster_info(&self) -> ClusterInfo {
        ClusterInfo::new(self.orgs.iter().map(|o| o.n_machines).collect())
    }

    /// Total processing time over all jobs.
    pub fn total_work(&self) -> Time {
        self.jobs.iter().map(|j| j.proc_time).sum()
    }

    /// The largest release time (0 for an empty trace).
    pub fn max_release(&self) -> Time {
        self.jobs.iter().map(|j| j.release).max().unwrap_or(0)
    }

    /// An upper bound on the time by which every job has completed under any
    /// greedy schedule: `max_release + total_work`.
    pub fn completion_horizon(&self) -> Time {
        self.max_release() + self.total_work()
    }

    /// Restricts the trace to the organizations in `keep` (a set of org
    /// indices), renumbering nothing: jobs of other organizations are
    /// dropped, organizations keep their ids but lose their machines if not
    /// kept. Used to build subcoalition inputs for testing.
    pub fn restrict_to(&self, keep: &[OrgId]) -> Trace {
        let keep_set: std::collections::HashSet<OrgId> = keep.iter().copied().collect();
        let orgs = self
            .orgs
            .iter()
            .enumerate()
            .map(|(i, o)| {
                if keep_set.contains(&OrgId(i as u32)) {
                    o.clone()
                } else {
                    OrgSpec::new(o.name.clone(), 0)
                }
            })
            .collect();
        let mut jobs: Vec<Job> =
            self.jobs.iter().filter(|j| keep_set.contains(&j.org)).copied().collect();
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = JobId(i as u32);
        }
        Trace { orgs, jobs }
    }

    /// Validates every model invariant; [`TraceBuilder::build`] guarantees
    /// these, so this is mainly useful for externally constructed traces.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.orgs.iter().all(|o| o.n_machines == 0) {
            return Err(TraceError::NoMachines);
        }
        for (i, j) in self.jobs.iter().enumerate() {
            if j.id.index() != i {
                return Err(TraceError::NonContiguousIds { position: i });
            }
            if j.org.index() >= self.orgs.len() {
                return Err(TraceError::UnknownOrg { job: j.id, org: j.org });
            }
            if j.proc_time == 0 {
                return Err(TraceError::ZeroProcTime { job: j.id });
            }
            if i > 0 && self.jobs[i - 1].release > j.release {
                return Err(TraceError::UnsortedJobs { position: i });
            }
        }
        Ok(())
    }
}

/// Builder for [`Trace`]; sorts jobs stably by release time and assigns
/// contiguous ids on [`TraceBuilder::build`].
#[derive(Default, Clone, Debug)]
pub struct TraceBuilder {
    orgs: Vec<OrgSpec>,
    jobs: Vec<(OrgId, Time, Time, Option<Time>)>,
}

impl TraceBuilder {
    /// Adds an organization and returns its id.
    pub fn org(&mut self, name: impl Into<String>, n_machines: usize) -> OrgId {
        self.orgs.push(OrgSpec::new(name, n_machines));
        OrgId((self.orgs.len() - 1) as u32)
    }

    /// Adds a job for `org` released at `release` with processing time
    /// `proc_time`.
    pub fn job(&mut self, org: OrgId, release: Time, proc_time: Time) -> &mut Self {
        self.jobs.push((org, release, proc_time, None));
        self
    }

    /// Adds a job with a deadline (for the tardiness utility).
    pub fn job_with_deadline(
        &mut self,
        org: OrgId,
        release: Time,
        proc_time: Time,
        deadline: Time,
    ) -> &mut Self {
        self.jobs.push((org, release, proc_time, Some(deadline)));
        self
    }

    /// Adds `count` identical jobs.
    pub fn jobs(
        &mut self,
        org: OrgId,
        release: Time,
        proc_time: Time,
        count: usize,
    ) -> &mut Self {
        for _ in 0..count {
            self.job(org, release, proc_time);
        }
        self
    }

    /// Finalizes the trace: stable-sorts by release time, assigns ids and
    /// validates.
    pub fn build(mut self) -> Result<Trace, TraceError> {
        self.jobs.sort_by_key(|&(_, release, _, _)| release);
        let jobs = self
            .jobs
            .into_iter()
            .enumerate()
            .map(|(i, (org, release, proc_time, deadline))| Job {
                id: JobId(i as u32),
                org,
                release,
                proc_time,
                deadline,
            })
            .collect();
        let trace = Trace { orgs: self.orgs, jobs };
        trace.validate()?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_org_trace() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("alpha", 2);
        let c = b.org("beta", 1);
        b.job(a, 0, 5).job(c, 3, 2).job(a, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn builder_sorts_and_ids() {
        let t = two_org_trace();
        assert_eq!(t.n_jobs(), 3);
        let releases: Vec<Time> = t.jobs().iter().map(|j| j.release).collect();
        assert_eq!(releases, vec![0, 1, 3]);
        for (i, j) in t.jobs().iter().enumerate() {
            assert_eq!(j.id.index(), i);
        }
    }

    #[test]
    fn stable_sort_preserves_fifo() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        // Two jobs released simultaneously: insertion order defines FIFO.
        b.job(a, 5, 10).job(a, 5, 20);
        let t = b.build().unwrap();
        assert_eq!(t.jobs()[0].proc_time, 10);
        assert_eq!(t.jobs()[1].proc_time, 20);
    }

    #[test]
    fn cluster_info_layout() {
        let t = two_org_trace();
        let info = t.cluster_info();
        assert_eq!(info.n_machines(), 3);
        assert_eq!(info.owner(MachineId(0)), OrgId(0));
        assert_eq!(info.owner(MachineId(1)), OrgId(0));
        assert_eq!(info.owner(MachineId(2)), OrgId(1));
        assert_eq!(info.machines_of(OrgId(0)), 2);
        assert!((info.share(OrgId(1)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn totals() {
        let t = two_org_trace();
        assert_eq!(t.total_work(), 8);
        assert_eq!(t.max_release(), 3);
        assert_eq!(t.completion_horizon(), 11);
    }

    #[test]
    fn validate_rejects_no_machines() {
        let mut b = Trace::builder();
        let a = b.org("a", 0);
        b.job(a, 0, 1);
        assert_eq!(b.build().unwrap_err(), TraceError::NoMachines);
    }

    #[test]
    fn validate_rejects_zero_proc() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 0, 0);
        assert!(matches!(b.build(), Err(TraceError::ZeroProcTime { .. })));
    }

    #[test]
    fn validate_rejects_unknown_org() {
        let mut b = Trace::builder();
        let _ = b.org("a", 1);
        b.job(OrgId(5), 0, 1);
        assert!(matches!(b.build(), Err(TraceError::UnknownOrg { .. })));
    }

    #[test]
    fn restrict_drops_other_jobs() {
        let t = two_org_trace();
        let r = t.restrict_to(&[OrgId(0)]);
        assert_eq!(r.n_orgs(), 2);
        assert_eq!(r.orgs()[1].n_machines, 0);
        assert!(r.jobs().iter().all(|j| j.org == OrgId(0)));
        assert_eq!(r.n_jobs(), 2);
        r.validate().unwrap();
    }

    #[test]
    fn jobs_of_filters() {
        let t = two_org_trace();
        assert_eq!(t.jobs_of(OrgId(0)).count(), 2);
        assert_eq!(t.jobs_of(OrgId(1)).count(), 1);
    }

    proptest! {
        #[test]
        fn prop_build_always_valid(
            specs in proptest::collection::vec((0u64..100, 1u64..50), 1..40)
        ) {
            let mut b = Trace::builder();
            let o1 = b.org("x", 2);
            let o2 = b.org("y", 1);
            for (i, (r, p)) in specs.iter().enumerate() {
                b.job(if i % 2 == 0 { o1 } else { o2 }, *r, *p);
            }
            let t = b.build().unwrap();
            prop_assert!(t.validate().is_ok());
            // Sorted by release.
            for w in t.jobs().windows(2) {
                prop_assert!(w[0].release <= w[1].release);
            }
        }
    }
}
