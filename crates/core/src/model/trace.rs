//! Traces: the full input to a simulation — organizations, their machines,
//! and the job stream.
//!
//! # Storage layout
//!
//! Jobs are stored column-wise (struct of arrays): flat `release`,
//! `proc_time`, `org`, `id`, and `deadline` vectors indexed by position,
//! plus a per-organization CSR index (offsets + positions grouped by
//! organization). The engine's release loop and the fairness sweeps scan
//! the release/processing-time columns cache-hot, and `jobs_of` is an O(1)
//! index lookup instead of a full-trace filter. The [`Job`] struct remains
//! the logical record: [`Trace::job`] and the [`Jobs`] view assemble it on
//! the fly (it is `Copy`), so call sites keep iterating jobs as before.

use super::{Job, JobId, MachineId, OrgId, Time};
use crate::checked_time;
use std::fmt;

/// An organization's static description: a name and the number of machines
/// it contributes to the common pool.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OrgSpec {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Number of identical machines contributed.
    pub n_machines: usize,
}

impl OrgSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, n_machines: usize) -> Self {
        OrgSpec { name: name.into(), n_machines }
    }
}

/// Static cluster facts derived from a trace: machine ownership and counts.
///
/// Machines are laid out organization by organization: organization 0 owns
/// machines `0..m_0`, organization 1 owns `m_0..m_0+m_1`, and so on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterInfo {
    machine_owner: Vec<OrgId>,
    org_machines: Vec<usize>,
}

impl ClusterInfo {
    /// Builds cluster info from per-organization machine counts.
    pub fn new(org_machines: Vec<usize>) -> Self {
        let mut machine_owner = Vec::with_capacity(org_machines.iter().sum());
        for (org, &m) in org_machines.iter().enumerate() {
            machine_owner.extend(std::iter::repeat_n(OrgId(org as u32), m));
        }
        ClusterInfo { machine_owner, org_machines }
    }

    /// Number of organizations.
    #[inline]
    pub fn n_orgs(&self) -> usize {
        self.org_machines.len()
    }

    /// Total number of machines in the pool.
    #[inline]
    pub fn n_machines(&self) -> usize {
        self.machine_owner.len()
    }

    /// The organization owning a machine.
    #[inline]
    pub fn owner(&self, machine: MachineId) -> OrgId {
        self.machine_owner[machine.index()]
    }

    /// Number of machines contributed by an organization.
    #[inline]
    pub fn machines_of(&self, org: OrgId) -> usize {
        self.org_machines[org.index()]
    }

    /// Per-organization machine counts.
    #[inline]
    pub fn org_machines(&self) -> &[usize] {
        &self.org_machines
    }

    /// The fair-share target of an organization: the fraction of the pool it
    /// contributes (the share used by the fair-share baselines, Section 7.1).
    #[inline]
    pub fn share(&self, org: OrgId) -> f64 {
        self.machines_of(org) as f64 / self.n_machines() as f64
    }
}

/// Errors detected by [`Trace::validate`] / [`TraceBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A job references an organization index that does not exist.
    UnknownOrg {
        /// The offending job.
        job: JobId,
        /// The referenced organization.
        org: OrgId,
    },
    /// A job has zero processing time.
    ZeroProcTime {
        /// The offending job.
        job: JobId,
    },
    /// The trace has no machines at all.
    NoMachines,
    /// Job ids are not the contiguous sequence `0..n`.
    NonContiguousIds {
        /// Position in the job list where the mismatch was found.
        position: usize,
    },
    /// Jobs are not sorted by release time.
    UnsortedJobs {
        /// Position of the first out-of-order job.
        position: usize,
    },
    /// A time aggregate of the trace overflows the `Time` (u64) range —
    /// e.g. an adversarial SWF log whose total work or completion horizon
    /// cannot be represented. Detected by [`Trace::validate`] via
    /// [`crate::checked_time`] so downstream arithmetic never wraps or
    /// panics under `overflow-checks`.
    TimeOverflow {
        /// Which aggregate overflowed (`"total_work"` or
        /// `"completion_horizon"`).
        what: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnknownOrg { job, org } => {
                write!(f, "job {job} references unknown organization {org}")
            }
            TraceError::ZeroProcTime { job } => {
                write!(f, "job {job} has zero processing time")
            }
            TraceError::NoMachines => write!(f, "trace has no machines"),
            TraceError::NonContiguousIds { position } => {
                write!(f, "job ids are not contiguous at position {position}")
            }
            TraceError::UnsortedJobs { position } => {
                write!(f, "jobs not sorted by release time at position {position}")
            }
            TraceError::TimeOverflow { what } => {
                write!(f, "trace {what} overflows the Time (u64) range")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The per-organization CSR job index: `positions[offsets[u]..offsets[u+1]]`
/// are the job *positions* of organization `u`, in order of appearance in
/// the release-sorted job list (= the documented per-org FIFO order).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct OrgIndex {
    offsets: Vec<u32>,
    positions: Vec<u32>,
}

impl OrgIndex {
    /// Builds the index by counting sort over the org column — O(n + k).
    /// Buckets cover `max(n_orgs, 1 + max job org)` so even a not-yet
    /// validated trace (jobs referencing unknown organizations) indexes
    /// every job.
    fn build(n_orgs: usize, orgs: &[OrgId]) -> OrgIndex {
        let buckets = orgs.iter().map(|o| o.index() + 1).max().unwrap_or(0).max(n_orgs);
        let mut counts = vec![0u32; buckets];
        for o in orgs {
            counts[o.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(buckets + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut next = offsets[..buckets].to_vec();
        let mut positions = vec![0u32; orgs.len()];
        for (pos, o) in orgs.iter().enumerate() {
            let slot = &mut next[o.index()];
            positions[*slot as usize] = pos as u32;
            *slot += 1;
        }
        OrgIndex { offsets, positions }
    }

    /// The job positions of one organization (empty for unknown orgs).
    #[inline]
    fn of(&self, org: OrgId) -> &[u32] {
        let u = org.index();
        if u + 1 >= self.offsets.len() {
            return &[];
        }
        &self.positions[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }
}

/// A complete simulation input: organizations (with machine counts) and the
/// job stream, sorted by release time.
///
/// Per-organization FIFO order is the order of appearance in the sorted job
/// list (ties in release time keep insertion order — a stable sort), which
/// matches the paper's "jobs of each individual organization should be
/// started in the order in which they are presented".
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    orgs: Vec<OrgSpec>,
    // Job columns, indexed by position in the release-sorted job list.
    ids: Vec<JobId>,
    job_orgs: Vec<OrgId>,
    releases: Vec<Time>,
    proc_times: Vec<Time>,
    deadlines: Vec<Option<Time>>,
    org_index: OrgIndex,
}

impl Trace {
    /// Starts building a trace.
    pub fn builder() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Assembles a trace from organizations and a job list (any job list —
    /// validity is checked separately by [`Trace::validate`], exactly as
    /// with the old row-wise representation).
    pub fn from_parts(orgs: Vec<OrgSpec>, jobs: Vec<Job>) -> Trace {
        let n = jobs.len();
        let mut ids = Vec::with_capacity(n);
        let mut job_orgs = Vec::with_capacity(n);
        let mut releases = Vec::with_capacity(n);
        let mut proc_times = Vec::with_capacity(n);
        let mut deadlines = Vec::with_capacity(n);
        for j in &jobs {
            ids.push(j.id);
            job_orgs.push(j.org);
            releases.push(j.release);
            proc_times.push(j.proc_time);
            deadlines.push(j.deadline);
        }
        let org_index = OrgIndex::build(orgs.len(), &job_orgs);
        Trace { orgs, ids, job_orgs, releases, proc_times, deadlines, org_index }
    }

    /// Number of organizations.
    #[inline]
    pub fn n_orgs(&self) -> usize {
        self.orgs.len()
    }

    /// Number of jobs.
    #[inline]
    pub fn n_jobs(&self) -> usize {
        self.releases.len()
    }

    /// All organizations.
    #[inline]
    pub fn orgs(&self) -> &[OrgSpec] {
        &self.orgs
    }

    /// All jobs as an iterable view, sorted by release time; the job at
    /// position `i` has `id == JobId(i)` (on a valid trace). Jobs are
    /// assembled from the columns on the fly — iterate the raw columns
    /// ([`Trace::releases`], [`Trace::proc_times`], [`Trace::job_orgs`])
    /// directly on hot paths that touch a single field.
    #[inline]
    pub fn jobs(&self) -> Jobs<'_> {
        Jobs { trace: self }
    }

    /// A single job by id (position in the sorted job list).
    #[inline]
    pub fn job(&self, id: JobId) -> Job {
        self.assemble(id.index())
    }

    /// The release-time column (position-indexed, sorted ascending on a
    /// valid trace).
    #[inline]
    pub fn releases(&self) -> &[Time] {
        &self.releases
    }

    /// The processing-time column (position-indexed).
    #[inline]
    pub fn proc_times(&self) -> &[Time] {
        &self.proc_times
    }

    /// The owning-organization column (position-indexed).
    #[inline]
    pub fn job_orgs(&self) -> &[OrgId] {
        &self.job_orgs
    }

    /// The deadline column (position-indexed; `None` for jobs without one).
    #[inline]
    pub fn deadlines(&self) -> &[Option<Time>] {
        &self.deadlines
    }

    #[inline]
    fn assemble(&self, i: usize) -> Job {
        Job {
            id: self.ids[i],
            org: self.job_orgs[i],
            release: self.releases[i],
            proc_time: self.proc_times[i],
            deadline: self.deadlines[i],
        }
    }

    /// Jobs of one organization, in FIFO order (order of appearance in the
    /// release-sorted job list). Backed by the per-organization index:
    /// O(jobs of `org`), not O(total jobs).
    pub fn jobs_of(&self, org: OrgId) -> impl Iterator<Item = Job> + '_ {
        self.org_index.of(org).iter().map(move |&p| self.assemble(p as usize))
    }

    /// Number of jobs of one organization — O(1) via the index.
    #[inline]
    pub fn n_jobs_of(&self, org: OrgId) -> usize {
        self.org_index.of(org).len()
    }

    /// Derives the cluster layout (machine ownership).
    pub fn cluster_info(&self) -> ClusterInfo {
        ClusterInfo::new(self.orgs.iter().map(|o| o.n_machines).collect())
    }

    /// Total processing time over all jobs, saturating at `Time::MAX`.
    /// [`Trace::validate`] (and therefore [`TraceBuilder::build`]) rejects
    /// traces where the exact sum overflows, so on a validated trace this
    /// is exact; see [`Trace::try_total_work`] for the checked form.
    pub fn total_work(&self) -> Time {
        self.proc_times.iter().fold(0, |acc, &p| checked_time::completion(acc, p))
    }

    /// Total processing time over all jobs, or
    /// [`TraceError::TimeOverflow`] if the sum exceeds the `Time` range.
    pub fn try_total_work(&self) -> Result<Time, TraceError> {
        self.proc_times
            .iter()
            .try_fold(0, |acc, &p| checked_time::checked_add(acc, p))
            .ok_or(TraceError::TimeOverflow { what: "total_work" })
    }

    /// The largest release time (0 for an empty trace). No arithmetic —
    /// a pure maximum, so it cannot overflow.
    pub fn max_release(&self) -> Time {
        self.releases.iter().copied().max().unwrap_or(0)
    }

    /// An upper bound on the time by which every job has completed under any
    /// greedy schedule: `max_release + total_work`, saturating at
    /// `Time::MAX` (exact on a validated trace; see
    /// [`Trace::try_completion_horizon`] for the checked form).
    pub fn completion_horizon(&self) -> Time {
        checked_time::completion(self.max_release(), self.total_work())
    }

    /// The completion horizon, or [`TraceError::TimeOverflow`] if
    /// `max_release + total_work` exceeds the `Time` range.
    pub fn try_completion_horizon(&self) -> Result<Time, TraceError> {
        let total = self.try_total_work()?;
        checked_time::checked_add(self.max_release(), total)
            .ok_or(TraceError::TimeOverflow { what: "completion_horizon" })
    }

    /// Restricts the trace to the organizations in `keep` (a set of org
    /// indices), renumbering nothing: jobs of other organizations are
    /// dropped, organizations keep their ids but lose their machines if not
    /// kept. Used to build subcoalition inputs for testing.
    ///
    /// Gathers through the per-organization index — O(orgs + kept jobs),
    /// no per-job set membership tests.
    pub fn restrict_to(&self, keep: &[OrgId]) -> Trace {
        let mut kept = vec![false; self.orgs.len()];
        for o in keep {
            if o.index() < kept.len() {
                kept[o.index()] = true;
            }
        }
        let orgs = self
            .orgs
            .iter()
            .zip(&kept)
            .map(|(o, &k)| if k { o.clone() } else { OrgSpec::new(o.name.clone(), 0) })
            .collect();
        let mut positions: Vec<u32> = kept
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k)
            .flat_map(|(u, _)| self.org_index.of(OrgId(u as u32)).iter().copied())
            .collect();
        // Merging per-org runs back into release-sorted position order.
        positions.sort_unstable();
        let jobs: Vec<Job> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| Job { id: JobId(i as u32), ..self.assemble(p as usize) })
            .collect();
        Trace::from_parts(orgs, jobs)
    }

    /// Admits one new job into the trace mid-run (online serving): the
    /// job is inserted at its release-sorted position — after any
    /// existing job with the same release time, so admission order
    /// defines FIFO among ties, exactly like [`TraceBuilder::build`]'s
    /// stable sort — and job ids are renumbered to stay the contiguous
    /// position sequence. Returns the admitted job's assigned id.
    ///
    /// Ids of jobs releasing *later* than the new job shift by one; the
    /// resumable engine only admits jobs releasing strictly after the
    /// time it has stepped to, so every shifted id belongs to a job no
    /// component has observed yet.
    ///
    /// # Errors
    /// [`TraceError::UnknownOrg`] for an out-of-range organization,
    /// [`TraceError::ZeroProcTime`] for an empty job, and
    /// [`TraceError::TimeOverflow`] when the admitted work would push
    /// the trace's total work or completion horizon past the `Time`
    /// range (checked *before* mutating, so a rejected admit leaves the
    /// trace untouched).
    pub fn admit_job(
        &mut self,
        org: OrgId,
        release: Time,
        proc_time: Time,
        deadline: Option<Time>,
    ) -> Result<JobId, TraceError> {
        let pos = self.releases.partition_point(|&r| r <= release);
        if org.index() >= self.orgs.len() {
            return Err(TraceError::UnknownOrg { job: JobId(pos as u32), org });
        }
        if proc_time == 0 {
            return Err(TraceError::ZeroProcTime { job: JobId(pos as u32) });
        }
        let total = checked_time::checked_add(self.try_total_work()?, proc_time)
            .ok_or(TraceError::TimeOverflow { what: "total_work" })?;
        checked_time::checked_add(self.max_release().max(release), total)
            .ok_or(TraceError::TimeOverflow { what: "completion_horizon" })?;
        self.job_orgs.insert(pos, org);
        self.releases.insert(pos, release);
        self.proc_times.insert(pos, proc_time);
        self.deadlines.insert(pos, deadline);
        // Ids are positions; restore contiguity from the insertion point.
        self.ids.insert(pos, JobId(pos as u32));
        for i in pos + 1..self.ids.len() {
            self.ids[i] = JobId(i as u32);
        }
        self.org_index = OrgIndex::build(self.orgs.len(), &self.job_orgs);
        Ok(JobId(pos as u32))
    }

    /// Validates every model invariant; [`TraceBuilder::build`] guarantees
    /// these, so this is mainly useful for externally constructed traces.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.orgs.iter().all(|o| o.n_machines == 0) {
            return Err(TraceError::NoMachines);
        }
        for i in 0..self.n_jobs() {
            if self.ids[i].index() != i {
                return Err(TraceError::NonContiguousIds { position: i });
            }
            if self.job_orgs[i].index() >= self.orgs.len() {
                return Err(TraceError::UnknownOrg {
                    job: self.ids[i],
                    org: self.job_orgs[i],
                });
            }
            if self.proc_times[i] == 0 {
                return Err(TraceError::ZeroProcTime { job: self.ids[i] });
            }
            if i > 0 && self.releases[i - 1] > self.releases[i] {
                return Err(TraceError::UnsortedJobs { position: i });
            }
        }
        self.try_completion_horizon()?;
        Ok(())
    }
}

/// A cheap iterable view over a trace's jobs (assembled from the columns).
#[derive(Copy, Clone, Debug)]
pub struct Jobs<'a> {
    trace: &'a Trace,
}

impl<'a> Jobs<'a> {
    /// Number of jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.trace.n_jobs()
    }

    /// Whether the trace has no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trace.n_jobs() == 0
    }

    /// The job at a position, if in range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Job> {
        (i < self.len()).then(|| self.trace.assemble(i))
    }

    /// Iterates all jobs in release-sorted order.
    #[inline]
    pub fn iter(&self) -> JobsIter<'a> {
        JobsIter { trace: self.trace, range: 0..self.trace.n_jobs() }
    }
}

impl<'a> IntoIterator for Jobs<'a> {
    type Item = Job;
    type IntoIter = JobsIter<'a>;

    fn into_iter(self) -> JobsIter<'a> {
        self.iter()
    }
}

/// Iterator over a trace's jobs, assembling each [`Job`] from the columns.
#[derive(Clone, Debug)]
pub struct JobsIter<'a> {
    trace: &'a Trace,
    range: std::ops::Range<usize>,
}

impl Iterator for JobsIter<'_> {
    type Item = Job;

    #[inline]
    fn next(&mut self) -> Option<Job> {
        self.range.next().map(|i| self.trace.assemble(i))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for JobsIter<'_> {}

impl DoubleEndedIterator for JobsIter<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<Job> {
        self.range.next_back().map(|i| self.trace.assemble(i))
    }
}

// Hand-written serde impls preserving the historical row-wise shape
// `{"orgs": [...], "jobs": [{id, org, release, proc_time, deadline}, ...]}`
// byte for byte (the `trace:` workload family and the committed goldens pin
// it), while the in-memory representation stays columnar.
#[cfg(feature = "serde")]
impl serde::Serialize for Trace {
    fn to_value(&self) -> serde::Value {
        let jobs: Vec<Job> = self.jobs().iter().collect();
        serde::Value::Object(vec![
            ("orgs".to_string(), serde::Serialize::to_value(&self.orgs)),
            ("jobs".to_string(), serde::Serialize::to_value(&jobs)),
        ])
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Trace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let orgs: Vec<OrgSpec> = serde::field(v, "orgs", "Trace")?;
        let jobs: Vec<Job> = serde::field(v, "jobs", "Trace")?;
        Ok(Trace::from_parts(orgs, jobs))
    }
}

/// Builder for [`Trace`]; sorts jobs stably by release time and assigns
/// contiguous ids on [`TraceBuilder::build`].
#[derive(Default, Clone, Debug)]
pub struct TraceBuilder {
    orgs: Vec<OrgSpec>,
    jobs: Vec<(OrgId, Time, Time, Option<Time>)>,
}

impl TraceBuilder {
    /// Adds an organization and returns its id.
    pub fn org(&mut self, name: impl Into<String>, n_machines: usize) -> OrgId {
        self.orgs.push(OrgSpec::new(name, n_machines));
        OrgId((self.orgs.len() - 1) as u32)
    }

    /// Adds a job for `org` released at `release` with processing time
    /// `proc_time`.
    pub fn job(&mut self, org: OrgId, release: Time, proc_time: Time) -> &mut Self {
        self.jobs.push((org, release, proc_time, None));
        self
    }

    /// Adds a job with a deadline (for the tardiness utility).
    pub fn job_with_deadline(
        &mut self,
        org: OrgId,
        release: Time,
        proc_time: Time,
        deadline: Time,
    ) -> &mut Self {
        self.jobs.push((org, release, proc_time, Some(deadline)));
        self
    }

    /// Adds `count` identical jobs.
    pub fn jobs(
        &mut self,
        org: OrgId,
        release: Time,
        proc_time: Time,
        count: usize,
    ) -> &mut Self {
        for _ in 0..count {
            self.job(org, release, proc_time);
        }
        self
    }

    /// Jobs added so far (streaming ingestion uses this to bound batches).
    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Finalizes the trace: stable-sorts by release time, assigns ids and
    /// validates.
    pub fn build(mut self) -> Result<Trace, TraceError> {
        self.jobs.sort_by_key(|&(_, release, _, _)| release);
        let jobs = self
            .jobs
            .into_iter()
            .enumerate()
            .map(|(i, (org, release, proc_time, deadline))| Job {
                id: JobId(i as u32),
                org,
                release,
                proc_time,
                deadline,
            })
            .collect();
        let trace = Trace::from_parts(self.orgs, jobs);
        trace.validate()?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_org_trace() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("alpha", 2);
        let c = b.org("beta", 1);
        b.job(a, 0, 5).job(c, 3, 2).job(a, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn builder_sorts_and_ids() {
        let t = two_org_trace();
        assert_eq!(t.n_jobs(), 3);
        let releases: Vec<Time> = t.jobs().iter().map(|j| j.release).collect();
        assert_eq!(releases, vec![0, 1, 3]);
        assert_eq!(t.releases(), &[0, 1, 3]);
        for (i, j) in t.jobs().iter().enumerate() {
            assert_eq!(j.id.index(), i);
        }
    }

    #[test]
    fn stable_sort_preserves_fifo() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        // Two jobs released simultaneously: insertion order defines FIFO.
        b.job(a, 5, 10).job(a, 5, 20);
        let t = b.build().unwrap();
        assert_eq!(t.proc_times(), &[10, 20]);
        assert_eq!(t.jobs().get(0).unwrap().proc_time, 10);
        assert_eq!(t.jobs().get(1).unwrap().proc_time, 20);
        assert!(t.jobs().get(2).is_none());
    }

    #[test]
    fn columns_match_assembled_jobs() {
        let t = two_org_trace();
        for (i, j) in t.jobs().iter().enumerate() {
            assert_eq!(j, t.job(JobId(i as u32)));
            assert_eq!(j.release, t.releases()[i]);
            assert_eq!(j.proc_time, t.proc_times()[i]);
            assert_eq!(j.org, t.job_orgs()[i]);
            assert_eq!(j.deadline, t.deadlines()[i]);
        }
        let back: Vec<Time> = t.jobs().iter().rev().map(|j| j.release).collect();
        assert_eq!(back, vec![3, 1, 0]);
        assert_eq!(t.jobs().iter().len(), 3);
    }

    #[test]
    fn cluster_info_layout() {
        let t = two_org_trace();
        let info = t.cluster_info();
        assert_eq!(info.n_machines(), 3);
        assert_eq!(info.owner(MachineId(0)), OrgId(0));
        assert_eq!(info.owner(MachineId(1)), OrgId(0));
        assert_eq!(info.owner(MachineId(2)), OrgId(1));
        assert_eq!(info.machines_of(OrgId(0)), 2);
        assert!((info.share(OrgId(1)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn totals() {
        let t = two_org_trace();
        assert_eq!(t.total_work(), 8);
        assert_eq!(t.max_release(), 3);
        assert_eq!(t.completion_horizon(), 11);
        assert_eq!(t.try_total_work(), Ok(8));
        assert_eq!(t.try_completion_horizon(), Ok(11));
    }

    #[test]
    fn overflowing_totals_error_not_panic() {
        // Total work alone overflows u64: build() must surface the typed
        // error (previously a raw `sum()` panicked under overflow-checks).
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 0, Time::MAX - 1).job(a, 1, Time::MAX - 1);
        let err = b.build().unwrap_err();
        assert_eq!(err, TraceError::TimeOverflow { what: "total_work" });
        assert!(err.to_string().contains("total_work"));

        // Work fits, but max_release + total_work does not.
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, Time::MAX - 1, 5);
        let err = b.build().unwrap_err();
        assert_eq!(err, TraceError::TimeOverflow { what: "completion_horizon" });

        // The infallible accessors saturate instead of wrapping on such a
        // trace (constructed without validation via from_parts).
        let t = Trace::from_parts(
            vec![OrgSpec::new("a", 1)],
            vec![
                Job {
                    id: JobId(0),
                    org: OrgId(0),
                    release: 0,
                    proc_time: Time::MAX - 1,
                    deadline: None,
                },
                Job {
                    id: JobId(1),
                    org: OrgId(0),
                    release: 1,
                    proc_time: Time::MAX - 1,
                    deadline: None,
                },
            ],
        );
        assert_eq!(t.total_work(), Time::MAX);
        assert_eq!(t.completion_horizon(), Time::MAX);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_no_machines() {
        let mut b = Trace::builder();
        let a = b.org("a", 0);
        b.job(a, 0, 1);
        assert_eq!(b.build().unwrap_err(), TraceError::NoMachines);
    }

    #[test]
    fn validate_rejects_zero_proc() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 0, 0);
        assert!(matches!(b.build(), Err(TraceError::ZeroProcTime { .. })));
    }

    #[test]
    fn validate_rejects_unknown_org() {
        let mut b = Trace::builder();
        let _ = b.org("a", 1);
        b.job(OrgId(5), 0, 1);
        assert!(matches!(b.build(), Err(TraceError::UnknownOrg { .. })));
    }

    #[test]
    fn restrict_drops_other_jobs() {
        let t = two_org_trace();
        let r = t.restrict_to(&[OrgId(0)]);
        assert_eq!(r.n_orgs(), 2);
        assert_eq!(r.orgs()[1].n_machines, 0);
        assert!(r.jobs().iter().all(|j| j.org == OrgId(0)));
        assert_eq!(r.n_jobs(), 2);
        r.validate().unwrap();
    }

    #[test]
    fn jobs_of_filters() {
        let t = two_org_trace();
        assert_eq!(t.jobs_of(OrgId(0)).count(), 2);
        assert_eq!(t.jobs_of(OrgId(1)).count(), 1);
        assert_eq!(t.n_jobs_of(OrgId(0)), 2);
        assert_eq!(t.n_jobs_of(OrgId(1)), 1);
        // Unknown organizations have no jobs (and no index entry).
        assert_eq!(t.jobs_of(OrgId(7)).count(), 0);
        assert_eq!(t.n_jobs_of(OrgId(7)), 0);
    }

    #[test]
    fn admit_job_inserts_sorted_and_renumbers() {
        let mut t = two_org_trace(); // releases [0, 1, 3]
        let id = t.admit_job(OrgId(1), 2, 7, None).unwrap();
        assert_eq!(id, JobId(2));
        assert_eq!(t.releases(), &[0, 1, 2, 3]);
        assert_eq!(t.proc_times()[2], 7);
        assert_eq!(t.job_orgs()[2], OrgId(1));
        t.validate().unwrap();
        // FIFO among equal releases: a second admit at the same release
        // lands after the first (admission order is FIFO order).
        let id2 = t.admit_job(OrgId(0), 2, 9, None).unwrap();
        assert_eq!(id2, JobId(3));
        assert_eq!(t.proc_times()[2..4], [7, 9]);
        t.validate().unwrap();
        // The per-org index was rebuilt.
        assert_eq!(t.n_jobs_of(OrgId(1)), 2);
        assert_eq!(t.n_jobs_of(OrgId(0)), 3);
    }

    #[test]
    fn admit_job_matches_builder_with_job_added() {
        // Admitting into a built trace equals building with the job in
        // the insertion list — the batch-equivalence anchor the serving
        // determinism contract rests on.
        let mut live = two_org_trace();
        live.admit_job(OrgId(0), 1, 4, None).unwrap();
        let mut b = Trace::builder();
        let a = b.org("alpha", 2);
        let c = b.org("beta", 1);
        b.job(a, 0, 5).job(c, 3, 2).job(a, 1, 1).job(a, 1, 4);
        assert_eq!(live, b.build().unwrap());
    }

    #[test]
    fn admit_job_rejects_bad_inputs_without_mutating() {
        let mut t = two_org_trace();
        let before = t.clone();
        assert!(matches!(
            t.admit_job(OrgId(9), 5, 1, None),
            Err(TraceError::UnknownOrg { .. })
        ));
        assert!(matches!(
            t.admit_job(OrgId(0), 5, 0, None),
            Err(TraceError::ZeroProcTime { .. })
        ));
        assert_eq!(
            t.admit_job(OrgId(0), 5, Time::MAX - 1, None),
            Err(TraceError::TimeOverflow { what: "total_work" })
        );
        assert_eq!(t, before, "rejected admits must leave the trace untouched");
    }

    /// A builder over arbitrary (org, release, proc) triples shared by the
    /// oracle proptests below.
    fn trace_of(specs: &[(u32, Time, Time)], n_orgs: u32) -> Trace {
        let mut b = Trace::builder();
        for u in 0..n_orgs {
            b.org(format!("org{u}"), if u == 0 { 2 } else { 1 });
        }
        for &(u, r, p) in specs {
            b.job(OrgId(u % n_orgs), r, p);
        }
        b.build().unwrap()
    }

    proptest! {
        #[test]
        fn prop_build_always_valid(
            specs in proptest::collection::vec((0u64..100, 1u64..50), 1..40)
        ) {
            let mut b = Trace::builder();
            let o1 = b.org("x", 2);
            let o2 = b.org("y", 1);
            for (i, (r, p)) in specs.iter().enumerate() {
                b.job(if i % 2 == 0 { o1 } else { o2 }, *r, *p);
            }
            let t = b.build().unwrap();
            prop_assert!(t.validate().is_ok());
            // Sorted by release.
            for w in t.releases().windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        /// The index-backed `jobs_of` must yield exactly what the naive
        /// full-trace filter yields, in the same (FIFO-of-appearance)
        /// order — the documented contract the CSR index must preserve.
        #[test]
        fn prop_jobs_of_matches_naive_filter(
            specs in proptest::collection::vec(
                (0u32..6, 0u64..50, 1u64..20), 1..60),
            n_orgs in 1u32..6,
        ) {
            let t = trace_of(&specs, n_orgs);
            for u in 0..n_orgs {
                let org = OrgId(u);
                let indexed: Vec<Job> = t.jobs_of(org).collect();
                let naive: Vec<Job> =
                    t.jobs().iter().filter(|j| j.org == org).collect();
                prop_assert_eq!(indexed, naive);
                prop_assert_eq!(t.n_jobs_of(org),
                    t.jobs().iter().filter(|j| j.org == org).count());
            }
        }

        /// Admitting a stream of jobs one by one must equal building the
        /// whole job list at once with [`TraceBuilder`] — the stable-sort
        /// tie order *is* the admission order, the batch-equivalence
        /// anchor the serving determinism contract rests on.
        #[test]
        fn prop_admit_stream_matches_batch_build(
            base in proptest::collection::vec(
                (0u32..4, 0u64..30, 1u64..10), 1..25),
            admits in proptest::collection::vec(
                (0u32..4, 0u64..30, 1u64..10), 1..15),
        ) {
            let n_orgs = 4u32;
            let mut live = trace_of(&base, n_orgs);
            for &(u, r, p) in &admits {
                live.admit_job(OrgId(u % n_orgs), r, p, None).unwrap();
            }
            let mut b = Trace::builder();
            for u in 0..n_orgs {
                b.org(format!("org{u}"), if u == 0 { 2 } else { 1 });
            }
            for &(u, r, p) in base.iter().chain(&admits) {
                b.job(OrgId(u % n_orgs), r, p);
            }
            prop_assert_eq!(live, b.build().unwrap());
        }

        /// `restrict_to` through the index must equal the retained naive
        /// oracle: filter the job list by membership, renumber ids.
        #[test]
        fn prop_restrict_matches_naive_oracle(
            specs in proptest::collection::vec(
                (0u32..5, 0u64..50, 1u64..20), 1..50),
            n_orgs in 1u32..5,
            keep_mask in 1u32..31,
        ) {
            let t = trace_of(&specs, n_orgs);
            let keep: Vec<OrgId> = (0..n_orgs)
                .filter(|u| keep_mask & (1 << u) != 0)
                .map(OrgId)
                .collect();
            let fast = t.restrict_to(&keep);

            // The naive oracle (the pre-index implementation).
            let keep_set: std::collections::HashSet<OrgId> =
                keep.iter().copied().collect();
            let naive_orgs: Vec<OrgSpec> = t
                .orgs()
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    if keep_set.contains(&OrgId(i as u32)) {
                        o.clone()
                    } else {
                        OrgSpec::new(o.name.clone(), 0)
                    }
                })
                .collect();
            let mut naive_jobs: Vec<Job> = t
                .jobs()
                .iter()
                .filter(|j| keep_set.contains(&j.org))
                .collect();
            for (i, j) in naive_jobs.iter_mut().enumerate() {
                j.id = JobId(i as u32);
            }
            prop_assert_eq!(fast, Trace::from_parts(naive_orgs, naive_jobs));
        }
    }
}
