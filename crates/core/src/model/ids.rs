//! Strongly-typed identifiers.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(pub u32);

        impl $name {
            /// The identifier as a `usize` index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

id_type!(
    /// An organization, identified by its index in the trace's organization
    /// list. Doubles as the player index in the cooperative game.
    OrgId,
    "O"
);

id_type!(
    /// A job, identified by its index in the trace's job list. Jobs of a
    /// single organization must be started in trace order (per-organization
    /// FIFO).
    JobId,
    "J"
);

id_type!(
    /// A machine (processor). Machines are identical; the id determines the
    /// owning organization via [`crate::model::ClusterInfo`].
    MachineId,
    "M"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", OrgId(3)), "O3");
        assert_eq!(format!("{:?}", JobId(12)), "J12");
        assert_eq!(format!("{}", MachineId(0)), "M0");
    }

    #[test]
    fn ids_index_roundtrip() {
        let id: OrgId = 7usize.into();
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(JobId(1) < JobId(2));
        assert_eq!(OrgId(5), OrgId(5));
    }
}
