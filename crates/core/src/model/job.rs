//! Jobs and the non-clairvoyant job view.

use super::{JobId, OrgId, Time};

/// A sequential job, as known to the **simulator** (full information).
///
/// Schedulers never see a `Job` directly — they receive [`JobMeta`], which
/// omits the processing time, enforcing the paper's non-clairvoyance
/// assumption at the type level.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Job {
    /// Global job identifier (index in the trace).
    pub id: JobId,
    /// The issuing organization.
    pub org: OrgId,
    /// Release time; the job is unknown to everyone before this moment.
    pub release: Time,
    /// Processing time, `p > 0`. Unknown to schedulers until completion.
    pub proc_time: Time,
    /// Optional due date, used only by the tardiness utility.
    pub deadline: Option<Time>,
}

impl Job {
    /// Creates a job with no deadline.
    pub fn new(id: JobId, org: OrgId, release: Time, proc_time: Time) -> Self {
        assert!(proc_time > 0, "processing time must be positive");
        Job { id, org, release, proc_time, deadline: None }
    }

    /// Sets the due date (builder-style).
    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The non-clairvoyant view of this job.
    pub fn meta(&self) -> JobMeta {
        JobMeta { id: self.id, org: self.org, release: self.release }
    }
}

/// The **non-clairvoyant** view of a job: everything a scheduler may know
/// before the job completes. Deliberately has no processing-time field.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct JobMeta {
    /// Global job identifier.
    pub id: JobId,
    /// The issuing organization.
    pub org: OrgId,
    /// Release time.
    pub release: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_hides_processing_time() {
        let j = Job::new(JobId(0), OrgId(1), 5, 10);
        let m = j.meta();
        assert_eq!(m.id, JobId(0));
        assert_eq!(m.org, OrgId(1));
        assert_eq!(m.release, 5);
        // JobMeta has exactly 3 public fields; this is a compile-time fact,
        // asserted here for documentation purposes.
    }

    #[test]
    #[should_panic]
    fn zero_processing_time_rejected() {
        let _ = Job::new(JobId(0), OrgId(0), 0, 0);
    }

    #[test]
    fn deadline_builder() {
        let j = Job::new(JobId(2), OrgId(0), 0, 3).with_deadline(9);
        assert_eq!(j.deadline, Some(9));
    }
}
