//! Widening and overflow-aware arithmetic on [`Time`] values.
//!
//! The same integer-overflow bug class has bitten this reproduction
//! twice (`Frac::cmp` cross-multiplication, the timeline sample grid's
//! `horizon·i` product), so raw `*`/`+` on `Time`-typed quantities in
//! library code is now flagged by the `time-arith-widening` rule of
//! `fairsched-analyze`. This module is the approved vocabulary: every
//! helper either widens to `u128` before multiplying, saturates at
//! [`Time::MAX`], or reports overflow through `Option` — never wraps.
//!
//! Goldens pin schedules bit-for-bit, and all helpers here agree exactly
//! with the raw operators whenever those do not overflow, so migrating a
//! call site cannot change a pinned value.

use crate::model::Time;

/// Completion time `start + proc_time`, saturating at [`Time::MAX`].
///
/// A saturated completion is "beyond any representable horizon", which
/// is exactly how the engine and the evaluation sweeps treat it; the raw
/// `+` would wrap in release-style builds and place the completion in
/// the past.
#[inline]
pub fn completion(start: Time, proc_time: Time) -> Time {
    start.saturating_add(proc_time)
}

/// Completion time `start + proc_time` widened to `u128`, for sweeps
/// that must order completions exactly even past [`Time::MAX`].
#[inline]
pub fn wide_completion(start: Time, proc_time: Time) -> u128 {
    start as u128 + proc_time as u128
}

/// The exact product `a · b` widened to `u128` (cannot overflow:
/// `u64::MAX² < u128::MAX`).
#[inline]
pub fn wide_mul(a: Time, b: Time) -> u128 {
    a as u128 * b as u128
}

/// `⌊value · num / den⌋` computed in `u128`, so the intermediate product
/// cannot wrap — the timeline sample grid's `⌊horizon·i/samples⌋` shape.
///
/// The true quotient always fits in [`Time`] when `num ≤ den`; for
/// `num > den` a quotient beyond [`Time::MAX`] saturates. `den == 0`
/// yields [`Time::MAX`] (the ∞ convention [`crate::scheduler::Frac`]
/// uses for empty denominators) instead of panicking.
#[inline]
pub fn scale_floor(value: Time, num: u64, den: u64) -> Time {
    if den == 0 {
        return Time::MAX;
    }
    let wide = value as u128 * num as u128 / den as u128;
    Time::try_from(wide).unwrap_or(Time::MAX)
}

/// Overflow-reporting addition (thin, analyzer-approved wrapper).
#[inline]
pub fn checked_add(a: Time, b: Time) -> Option<Time> {
    a.checked_add(b)
}

/// Overflow-reporting multiplication (thin, analyzer-approved wrapper).
#[inline]
pub fn checked_mul(a: Time, b: Time) -> Option<Time> {
    a.checked_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_matches_raw_add_when_in_range() {
        assert_eq!(completion(3, 4), 7);
        assert_eq!(completion(0, 0), 0);
        assert_eq!(completion(Time::MAX - 5, 5), Time::MAX);
    }

    #[test]
    fn completion_saturates_instead_of_wrapping() {
        assert_eq!(completion(Time::MAX, 1), Time::MAX);
        assert_eq!(completion(Time::MAX - 1, 7), Time::MAX);
        // The raw operator would have wrapped to a completion in the past.
        assert_eq!((Time::MAX - 1).wrapping_add(7), 5);
    }

    #[test]
    fn wide_completion_orders_past_time_max() {
        let a = wide_completion(Time::MAX, 2);
        let b = wide_completion(Time::MAX, 3);
        assert!(a < b);
        assert_eq!(a, Time::MAX as u128 + 2);
    }

    #[test]
    fn wide_mul_is_exact_at_the_extremes() {
        assert_eq!(wide_mul(Time::MAX, Time::MAX), (Time::MAX as u128).pow(2));
        assert_eq!(wide_mul(0, Time::MAX), 0);
    }

    #[test]
    fn scale_floor_matches_narrow_math_in_range() {
        assert_eq!(scale_floor(100, 1, 4), 25);
        assert_eq!(scale_floor(100, 3, 4), 75);
        assert_eq!(scale_floor(7, 2, 3), 4);
        assert_eq!(scale_floor(0, 5, 7), 0);
    }

    #[test]
    fn scale_floor_survives_products_past_time_max() {
        // horizon·i overflows u64 for any fraction of Time::MAX: the
        // pre-PR-5 sample grid bug shape.
        assert_eq!(scale_floor(Time::MAX, 1, 2), Time::MAX / 2);
        assert_eq!(scale_floor(Time::MAX, 2, 2), Time::MAX);
        assert_eq!(scale_floor(Time::MAX / 3, 3, 3), Time::MAX / 3);
    }

    #[test]
    fn scale_floor_edge_denominators() {
        assert_eq!(scale_floor(5, 7, 0), Time::MAX);
        // Saturates when the true quotient exceeds Time::MAX.
        assert_eq!(scale_floor(Time::MAX, 3, 1), Time::MAX);
    }

    #[test]
    fn checked_wrappers_delegate() {
        assert_eq!(checked_add(1, 2), Some(3));
        assert_eq!(checked_add(Time::MAX, 1), None);
        assert_eq!(checked_mul(3, 4), Some(12));
        assert_eq!(checked_mul(Time::MAX, 2), None);
    }
}
