//! Schedules and validation of the paper's structural invariants.

use crate::model::{ClusterInfo, JobId, MachineId, OrgId, Time, Trace};
use std::fmt;

/// One scheduled job: which job started when, on which machine, and how
/// long it ran. A schedule entry corresponds to the paper's triple
/// `(J, s, M(J))`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScheduledJob {
    /// The job.
    pub job: JobId,
    /// The issuing organization (denormalized for convenience).
    pub org: OrgId,
    /// The machine it ran on.
    pub machine: MachineId,
    /// Start time (`s ≥ release`).
    pub start: Time,
    /// Processing time (`completion = start + proc_time`).
    pub proc_time: Time,
}

impl ScheduledJob {
    /// Completion time, saturating at [`Time::MAX`] (a saturated
    /// completion is beyond any representable horizon; the raw `+` would
    /// wrap it into the past in release-style builds).
    #[inline]
    pub fn completion(&self) -> Time {
        crate::checked_time::completion(self.start, self.proc_time)
    }

    /// Number of unit-size parts completed strictly before `t`
    /// (`min(p, t − s)`, clamped at 0 when `s > t`).
    #[inline]
    pub fn units_before(&self, t: Time) -> Time {
        self.proc_time.min(t.saturating_sub(self.start))
    }
}

/// Violations of the model invariants detected by [`Schedule::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// A job started before its release time.
    StartedBeforeRelease(JobId),
    /// Two jobs overlap on one machine.
    MachineOverlap(MachineId, JobId, JobId),
    /// Jobs of one organization were started out of FIFO order.
    FifoViolation(OrgId, JobId, JobId),
    /// A recorded processing time disagrees with the trace.
    WrongProcTime(JobId),
    /// A job appears more than once.
    DuplicateJob(JobId),
    /// A machine id out of range.
    UnknownMachine(MachineId),
    /// Greediness violated: at some time a machine was idle, a released job
    /// was waiting, yet nothing was started.
    NotGreedy {
        /// A time at which the violation is visible.
        time: Time,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::StartedBeforeRelease(j) => {
                write!(f, "{j} started before its release")
            }
            ScheduleViolation::MachineOverlap(m, a, b) => {
                write!(f, "{a} and {b} overlap on {m}")
            }
            ScheduleViolation::FifoViolation(o, a, b) => {
                write!(f, "{o}: {b} started before earlier job {a}")
            }
            ScheduleViolation::WrongProcTime(j) => {
                write!(f, "{j} has a processing time different from the trace")
            }
            ScheduleViolation::DuplicateJob(j) => write!(f, "{j} scheduled twice"),
            ScheduleViolation::UnknownMachine(m) => write!(f, "unknown machine {m}"),
            ScheduleViolation::NotGreedy { time } => {
                write!(f, "idle machine with waiting jobs at t={time}")
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

/// A (possibly partial) schedule: the set of started jobs.
///
/// Jobs not present were not started (yet). Entries are kept in start-time
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schedule {
    entries: Vec<ScheduledJob>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Appends a started job. Starts must be appended in non-decreasing
    /// start-time order (as an online scheduler produces them).
    ///
    /// # Panics
    /// Panics if `start` precedes the last recorded start.
    pub fn push(&mut self, entry: ScheduledJob) {
        if let Some(last) = self.entries.last() {
            assert!(
                last.start <= entry.start,
                "schedule entries must be appended in start-time order"
            );
        }
        self.entries.push(entry);
    }

    /// All entries in start-time order.
    #[inline]
    pub fn entries(&self) -> &[ScheduledJob] {
        &self.entries
    }

    /// Number of started jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no job has started.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries of one organization, in start order.
    pub fn entries_of(&self, org: OrgId) -> impl Iterator<Item = &ScheduledJob> {
        self.entries.iter().filter(move |e| e.org == org)
    }

    /// The entry for a specific job, if started.
    pub fn entry(&self, job: JobId) -> Option<&ScheduledJob> {
        self.entries.iter().find(|e| e.job == job)
    }

    /// Total number of unit-size job parts completed strictly before `t` —
    /// the paper's `p_tot` when evaluated on the reference fair schedule
    /// (Section 7.2).
    pub fn completed_units(&self, t: Time) -> Time {
        self.entries.iter().map(|e| e.units_before(t)).sum()
    }

    /// Total busy machine time in `[0, t)`.
    pub fn busy_time(&self, t: Time) -> Time {
        self.completed_units(t)
    }

    /// Resource utilization in `[0, t)`: busy time divided by `m·t`
    /// (Section 6's metric).
    pub fn utilization(&self, n_machines: usize, t: Time) -> f64 {
        if n_machines == 0 || t == 0 {
            return 0.0;
        }
        self.busy_time(t) as f64 / (n_machines as f64 * t as f64)
    }

    /// Checks every structural invariant of the model against the trace:
    /// release respected, no machine overlap, per-organization FIFO,
    /// processing times faithful, no duplicates, and — because every
    /// algorithm in the paper is greedy — the no-idle condition up to
    /// `horizon`.
    pub fn validate(
        &self,
        trace: &Trace,
        horizon: Time,
    ) -> Result<(), ScheduleViolation> {
        let info = trace.cluster_info();
        self.validate_with_info(trace, &info, horizon)
    }

    /// [`Schedule::validate`] with a precomputed [`ClusterInfo`].
    pub fn validate_with_info(
        &self,
        trace: &Trace,
        info: &ClusterInfo,
        horizon: Time,
    ) -> Result<(), ScheduleViolation> {
        let mut seen = vec![false; trace.n_jobs()];
        // Per-machine last completion, for overlap checks (entries are in
        // start order, so a per-machine scan suffices).
        let mut machine_last: Vec<Option<(JobId, Time)>> = vec![None; info.n_machines()];
        // Per-org last started job id, for FIFO checks.
        let mut org_last: Vec<Option<JobId>> = vec![None; trace.n_orgs()];

        for e in &self.entries {
            let job = trace.job(e.job);
            if seen[e.job.index()] {
                return Err(ScheduleViolation::DuplicateJob(e.job));
            }
            seen[e.job.index()] = true;
            if e.start < job.release {
                return Err(ScheduleViolation::StartedBeforeRelease(e.job));
            }
            if e.proc_time != job.proc_time || e.org != job.org {
                return Err(ScheduleViolation::WrongProcTime(e.job));
            }
            if e.machine.index() >= info.n_machines() {
                return Err(ScheduleViolation::UnknownMachine(e.machine));
            }
            if let Some((prev, end)) = machine_last[e.machine.index()] {
                if e.start < end {
                    return Err(ScheduleViolation::MachineOverlap(
                        e.machine, prev, e.job,
                    ));
                }
            }
            machine_last[e.machine.index()] = Some((e.job, e.completion()));
            if let Some(prev) = org_last[e.org.index()] {
                if prev > e.job {
                    return Err(ScheduleViolation::FifoViolation(e.org, prev, e.job));
                }
            }
            org_last[e.org.index()] = Some(e.job);
        }

        self.check_greedy(trace, info, horizon)
    }

    /// The greediness check: a single event sweep over sorted starts,
    /// completions, and releases with running counters — `O(n log n)` in
    /// the number of jobs and schedule entries, so `validate(true)` stays
    /// usable at `--paper-scale` (the old implementation rescanned every
    /// entry and every job at every event time: `O(jobs²·events)`).
    ///
    /// At each event time `t < horizon`:
    /// * machines busy = `#{starts ≤ t} − #{completions ≤ t}` (exactly the
    ///   entries with `start ≤ t < completion`),
    /// * a job is waiting iff `#{releases ≤ t} > #{starts ≤ t}` (every
    ///   started job has `release ≤ start ≤ t`, release order having been
    ///   validated by the caller),
    ///
    /// and an idle machine together with a waiting job is a greediness
    /// violation — reported at the earliest such time, matching the
    /// per-time rescan exactly.
    fn check_greedy(
        &self,
        trace: &Trace,
        info: &ClusterInfo,
        horizon: Time,
    ) -> Result<(), ScheduleViolation> {
        let mut starts: Vec<Time> = self.entries.iter().map(|e| e.start).collect();
        let mut completions: Vec<Time> =
            self.entries.iter().map(|e| e.completion()).collect();
        let mut releases: Vec<Time> = trace.jobs().iter().map(|j| j.release).collect();
        starts.sort_unstable();
        completions.sort_unstable();
        releases.sort_unstable();

        // Candidate times: every event strictly before the horizon.
        let mut times: Vec<Time> = releases
            .iter()
            .chain(starts.iter())
            .chain(completions.iter())
            .copied()
            .filter(|&t| t < horizon)
            .collect();
        times.sort_unstable();
        times.dedup();

        let n_machines = info.n_machines();
        let (mut si, mut ci, mut ri) = (0usize, 0usize, 0usize);
        for &t in &times {
            while si < starts.len() && starts[si] <= t {
                si += 1;
            }
            while ci < completions.len() && completions[ci] <= t {
                ci += 1;
            }
            while ri < releases.len() && releases[ri] <= t {
                ri += 1;
            }
            let busy = si - ci;
            let waiting = ri > si;
            if busy < n_machines && waiting {
                return Err(ScheduleViolation::NotGreedy { time: t });
            }
        }
        Ok(())
    }
}

impl FromIterator<ScheduledJob> for Schedule {
    fn from_iter<T: IntoIterator<Item = ScheduledJob>>(iter: T) -> Self {
        let mut entries: Vec<ScheduledJob> = iter.into_iter().collect();
        entries.sort_by_key(|e| e.start);
        Schedule { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Trace;
    use proptest::prelude::*;

    fn trace_1org_1machine() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 0, 3).job(a, 0, 2);
        b.build().unwrap()
    }

    fn sj(job: u32, org: u32, machine: u32, start: Time, p: Time) -> ScheduledJob {
        ScheduledJob {
            job: JobId(job),
            org: OrgId(org),
            machine: MachineId(machine),
            start,
            proc_time: p,
        }
    }

    #[test]
    fn valid_sequential_schedule() {
        let t = trace_1org_1machine();
        let s: Schedule = [sj(0, 0, 0, 0, 3), sj(1, 0, 0, 3, 2)].into_iter().collect();
        s.validate(&t, 100).unwrap();
    }

    #[test]
    fn detects_overlap() {
        let t = trace_1org_1machine();
        let s: Schedule = [sj(0, 0, 0, 0, 3), sj(1, 0, 0, 2, 2)].into_iter().collect();
        assert!(matches!(
            s.validate(&t, 100),
            Err(ScheduleViolation::MachineOverlap(..))
        ));
    }

    #[test]
    fn detects_early_start() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        b.job(a, 5, 1);
        let t = b.build().unwrap();
        let s: Schedule = [sj(0, 0, 0, 2, 1)].into_iter().collect();
        assert_eq!(
            s.validate(&t, 100),
            Err(ScheduleViolation::StartedBeforeRelease(JobId(0)))
        );
    }

    #[test]
    fn detects_fifo_violation() {
        let mut b = Trace::builder();
        let a = b.org("a", 2);
        b.job(a, 0, 2).job(a, 0, 2);
        let t = b.build().unwrap();
        // Job 1 starts at 0, job 0 at 1: FIFO broken.
        let s: Schedule = [sj(1, 0, 0, 0, 2), sj(0, 0, 1, 0, 2)].into_iter().collect();
        // Note both start at 0; entry order decides. Make job1 strictly first:
        let s2: Schedule = [sj(1, 0, 0, 0, 2), sj(0, 0, 1, 1, 2)].into_iter().collect();
        // With equal starts the FIFO check uses append order:
        let r = s.validate(&t, 100);
        let r2 = s2.validate(&t, 100);
        assert!(
            matches!(r, Err(ScheduleViolation::FifoViolation(..)))
                || matches!(r2, Err(ScheduleViolation::FifoViolation(..)))
        );
    }

    #[test]
    fn detects_duplicate() {
        let t = trace_1org_1machine();
        let s: Schedule = [sj(0, 0, 0, 0, 3), sj(0, 0, 0, 3, 3)].into_iter().collect();
        assert_eq!(s.validate(&t, 100), Err(ScheduleViolation::DuplicateJob(JobId(0))));
    }

    #[test]
    fn detects_wrong_proc_time() {
        let t = trace_1org_1machine();
        let s: Schedule = [sj(0, 0, 0, 0, 7)].into_iter().collect();
        assert!(s.validate(&t, 0) == Err(ScheduleViolation::WrongProcTime(JobId(0))));
    }

    #[test]
    fn detects_non_greedy_idle() {
        let t = trace_1org_1machine();
        // Job 0 delayed to t=1 with the machine idle at t=0.
        let s: Schedule = [sj(0, 0, 0, 1, 3), sj(1, 0, 0, 4, 2)].into_iter().collect();
        assert!(matches!(
            s.validate(&t, 100),
            Err(ScheduleViolation::NotGreedy { time: 0 })
        ));
    }

    #[test]
    fn greedy_check_ignores_beyond_horizon() {
        let t = trace_1org_1machine();
        // Nothing scheduled, but horizon 0: nothing to check.
        let s = Schedule::new();
        s.validate(&t, 0).unwrap();
        assert!(s.validate(&t, 1).is_err());
    }

    #[test]
    fn units_and_utilization() {
        let e = sj(0, 0, 0, 2, 5);
        assert_eq!(e.units_before(0), 0);
        assert_eq!(e.units_before(2), 0);
        assert_eq!(e.units_before(4), 2);
        assert_eq!(e.units_before(7), 5);
        assert_eq!(e.units_before(100), 5);
        let s: Schedule = [e].into_iter().collect();
        assert_eq!(s.completed_units(7), 5);
        assert!((s.utilization(1, 10) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(0, 10), 0.0);
    }

    #[test]
    fn push_requires_start_order() {
        let mut s = Schedule::new();
        s.push(sj(0, 0, 0, 5, 1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s2 = s.clone();
            s2.push(sj(1, 0, 0, 3, 1));
        }));
        assert!(result.is_err());
    }

    /// The pre-sweep greediness check, kept as a property-test oracle:
    /// rescans every entry and job at every event time.
    fn check_greedy_naive(
        s: &Schedule,
        trace: &Trace,
        n_machines: usize,
        horizon: Time,
    ) -> Result<(), ScheduleViolation> {
        let mut times: Vec<Time> = trace
            .jobs()
            .iter()
            .map(|j| j.release)
            .chain(s.entries.iter().flat_map(|e| [e.start, e.completion()]))
            .filter(|&t| t < horizon)
            .collect();
        times.sort_unstable();
        times.dedup();
        for &t in &times {
            let busy =
                s.entries.iter().filter(|e| e.start <= t && t < e.completion()).count();
            if busy >= n_machines {
                continue;
            }
            let waiting = trace.jobs().iter().any(|j| {
                j.release <= t
                    && match s.entry(j.id) {
                        None => true,
                        Some(e) => e.start > t,
                    }
            });
            if waiting {
                return Err(ScheduleViolation::NotGreedy { time: t });
            }
        }
        Ok(())
    }

    proptest! {
        /// The event-sweep greediness check agrees with the naive
        /// per-time rescan on arbitrary (partial, possibly non-greedy)
        /// two-machine schedules, including the violation time.
        #[test]
        fn prop_greedy_sweep_matches_naive(
            jobs in proptest::collection::vec((0u64..30, 1u64..8), 1..12),
            delays in proptest::collection::vec(0u64..6, 12),
            skip in 0usize..3,
            horizon in 1u64..60,
        ) {
            let mut b = Trace::builder();
            let a = b.org("a", 2);
            for &(r, p) in &jobs {
                b.job(a, r, p);
            }
            let trace = b.build().unwrap();
            // Build a serial schedule on machines 0/1 with arbitrary extra
            // delays (possibly violating greediness), skipping some jobs.
            let mut clock = [0u64; 2];
            let mut entries = Vec::new();
            for (i, j) in trace.jobs().iter().enumerate() {
                if i < skip {
                    continue;
                }
                let m = i % 2;
                let start = clock[m].max(j.release) + delays[i % delays.len()];
                clock[m] = start + j.proc_time;
                entries.push(ScheduledJob {
                    job: j.id,
                    org: j.org,
                    machine: MachineId(m as u32),
                    start,
                    proc_time: j.proc_time,
                });
            }
            let s: Schedule = entries.into_iter().collect();
            let info = trace.cluster_info();
            let fast = s.check_greedy(&trace, &info, horizon);
            let naive = check_greedy_naive(&s, &trace, info.n_machines(), horizon);
            prop_assert_eq!(fast, naive);
        }
    }

    #[test]
    fn entries_of_org() {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 1).job(c, 0, 1);
        let _t = b.build().unwrap();
        let s: Schedule = [sj(0, 0, 0, 0, 1), sj(1, 1, 1, 0, 1)].into_iter().collect();
        assert_eq!(s.entries_of(OrgId(0)).count(), 1);
        assert_eq!(s.entry(JobId(1)).unwrap().org, OrgId(1));
    }
}
