//! The fairness evaluation metric of Section 7.2: `Δψ / p_tot`.
//!
//! A scheduler's fairness is measured against the reference fair schedule
//! (produced by the exact REF algorithm): `Δψ = ‖ψ − ψ*‖_M` is the Manhattan
//! distance between the realized and ideal utility vectors, and `p_tot` is
//! the number of unit-size job parts completed in the reference schedule.
//! Since delaying one unit part by one time moment costs exactly one unit of
//! `ψ_sp`, the ratio is *the average unjustified delay (or speed-up) of a
//! job unit caused by the scheduler's unfairness* — the quantity reported in
//! Tables 1–2 and Figure 10.

use crate::model::{OrgId, Time, Trace};
use crate::schedule::Schedule;
use crate::utility::{sp_vector, Util};
use std::fmt;

/// Per-organization fairness comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrgFairness {
    /// The organization.
    pub org: OrgId,
    /// Its name (from the trace).
    pub name: String,
    /// Realized utility `ψ(u)` under the evaluated scheduler.
    pub utility: Util,
    /// Ideal utility `ψ*(u)` under the reference fair scheduler.
    pub reference: Util,
}

impl OrgFairness {
    /// Signed deviation `ψ(u) − ψ*(u)` (positive = favored).
    pub fn deviation(&self) -> Util {
        self.utility - self.reference
    }
}

/// A fairness report: utilities vs the fair reference, `Δψ` and `Δψ/p_tot`.
#[derive(Clone, Debug, PartialEq)]
pub struct FairnessReport {
    /// Per-organization rows.
    pub per_org: Vec<OrgFairness>,
    /// Manhattan distance `Σ_u |ψ(u) − ψ*(u)|`.
    pub delta_psi: Util,
    /// Unit parts completed in the reference schedule by the horizon.
    pub p_tot: Time,
    /// Evaluation horizon.
    pub horizon: Time,
}

impl FairnessReport {
    /// Builds a report from utility vectors.
    ///
    /// # Panics
    /// Panics if vector lengths disagree with the trace.
    pub fn from_vectors(
        trace: &Trace,
        psi: &[Util],
        psi_ref: &[Util],
        p_tot: Time,
        horizon: Time,
    ) -> Self {
        assert_eq!(psi.len(), trace.n_orgs());
        assert_eq!(psi_ref.len(), trace.n_orgs());
        let per_org: Vec<OrgFairness> = (0..trace.n_orgs())
            .map(|u| OrgFairness {
                org: OrgId(u as u32),
                name: trace.orgs()[u].name.clone(),
                utility: psi[u],
                reference: psi_ref[u],
            })
            .collect();
        let delta_psi = per_org.iter().map(|o| o.deviation().abs()).sum();
        FairnessReport { per_org, delta_psi, p_tot, horizon }
    }

    /// Builds a report by evaluating `ψ_sp` on two schedules at `horizon`.
    pub fn from_schedules(
        trace: &Trace,
        schedule: &Schedule,
        reference: &Schedule,
        horizon: Time,
    ) -> Self {
        let psi = sp_vector(trace, schedule, horizon);
        let psi_ref = sp_vector(trace, reference, horizon);
        let p_tot = reference.completed_units(horizon);
        Self::from_vectors(trace, &psi, &psi_ref, p_tot, horizon)
    }

    /// The headline metric `Δψ / p_tot` (0 when nothing completed).
    pub fn unfairness(&self) -> f64 {
        if self.p_tot == 0 {
            0.0
        } else {
            self.delta_psi as f64 / self.p_tot as f64
        }
    }
}

/// A point of the unfairness time series.
#[derive(Clone, Debug, PartialEq)]
pub struct FairnessPoint {
    /// Sample time.
    pub t: Time,
    /// `Δψ(t) = ‖ψ(t) − ψ*(t)‖₁`.
    pub delta_psi: Util,
    /// Units completed in the reference schedule by `t`.
    pub p_tot: Time,
}

impl FairnessPoint {
    /// `Δψ(t)/p_tot(t)` (0 when nothing completed).
    pub fn unfairness(&self) -> f64 {
        if self.p_tot == 0 {
            0.0
        } else {
            self.delta_psi as f64 / self.p_tot as f64
        }
    }
}

/// The unfairness time series `Δψ(t)/p_tot(t)` at `samples` evenly spaced
/// times in `(0, horizon]`.
///
/// Definition 3.1 requires fairness *at every time moment*, not just
/// asymptotically ("we want to avoid the case in which an organization is
/// disfavored in one, possibly long, time period and then favored in the
/// next one"); this timeline makes a scheduler's responsiveness visible.
pub fn fairness_timeline(
    trace: &Trace,
    schedule: &Schedule,
    reference: &Schedule,
    horizon: Time,
    samples: usize,
) -> Vec<FairnessPoint> {
    assert!(samples > 0, "need at least one sample");
    (1..=samples)
        .map(|i| {
            let t = horizon * i as Time / samples as Time;
            let psi = sp_vector(trace, schedule, t);
            let psi_ref = sp_vector(trace, reference, t);
            let delta_psi = psi.iter().zip(&psi_ref).map(|(a, b)| (a - b).abs()).sum();
            FairnessPoint { t, delta_psi, p_tot: reference.completed_units(t) }
        })
        .collect()
}

impl fmt::Display for FairnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fairness @ t={} (Δψ = {}, p_tot = {}, Δψ/p_tot = {:.4})",
            self.horizon,
            self.delta_psi,
            self.p_tot,
            self.unfairness()
        )?;
        writeln!(f, "{:<16} {:>16} {:>16} {:>12}", "org", "ψ", "ψ*", "ψ−ψ*")?;
        for o in &self.per_org {
            writeln!(
                f,
                "{:<16} {:>16} {:>16} {:>12}",
                o.name,
                o.utility,
                o.reference,
                o.deviation()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{JobId, MachineId};
    use crate::schedule::ScheduledJob;

    fn trace2() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 2).job(c, 0, 2);
        b.build().unwrap()
    }

    fn sched(entries: &[(u32, u32, u32, Time, Time)]) -> Schedule {
        entries
            .iter()
            .map(|&(j, o, m, s, p)| ScheduledJob {
                job: JobId(j),
                org: OrgId(o),
                machine: MachineId(m),
                start: s,
                proc_time: p,
            })
            .collect()
    }

    #[test]
    fn identical_schedules_are_perfectly_fair() {
        let t = trace2();
        let s = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, 0, 2)]);
        let r = FairnessReport::from_schedules(&t, &s, &s, 10);
        assert_eq!(r.delta_psi, 0);
        assert_eq!(r.unfairness(), 0.0);
        assert_eq!(r.p_tot, 4);
    }

    #[test]
    fn deviation_counts_both_directions() {
        let t = trace2();
        // Reference: both in parallel. Evaluated: serial on one machine
        // (org b delayed by 2).
        let reference = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, 0, 2)]);
        let eval = sched(&[(0, 0, 0, 0, 2), (1, 1, 0, 2, 2)]);
        let r = FairnessReport::from_schedules(&t, &eval, &reference, 10);
        // Org b's two units each delayed 2 -> psi drops by 4.
        assert_eq!(r.per_org[1].deviation(), -4);
        assert_eq!(r.per_org[0].deviation(), 0);
        assert_eq!(r.delta_psi, 4);
        assert!((r.unfairness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_reference_yields_zero_ratio() {
        let t = trace2();
        let empty = Schedule::new();
        let r = FairnessReport::from_schedules(&t, &empty, &empty, 0);
        assert_eq!(r.unfairness(), 0.0);
    }

    #[test]
    fn timeline_monotone_sampling() {
        let t = trace2();
        let reference = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, 0, 2)]);
        let eval = sched(&[(0, 0, 0, 0, 2), (1, 1, 0, 2, 2)]);
        let series = fairness_timeline(&t, &eval, &reference, 8, 4);
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].t, 2);
        assert_eq!(series[3].t, 8);
        // Unfairness accumulates while org b's units are delayed.
        assert!(series[3].delta_psi >= series[0].delta_psi);
        // At the end: 4 (two units delayed 2 each).
        assert_eq!(series[3].delta_psi, 4);
        assert!(series[3].unfairness() > 0.0);
    }

    #[test]
    #[should_panic]
    fn timeline_rejects_zero_samples() {
        let t = trace2();
        let s = Schedule::new();
        let _ = fairness_timeline(&t, &s, &s, 10, 0);
    }

    #[test]
    fn display_contains_orgs() {
        let t = trace2();
        let s = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, 0, 2)]);
        let r = FairnessReport::from_schedules(&t, &s, &s, 10);
        let text = format!("{r}");
        assert!(text.contains("a"));
        assert!(text.contains("p_tot = 4"));
    }
}
