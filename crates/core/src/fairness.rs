//! The fairness evaluation metric of Section 7.2: `Δψ / p_tot`.
//!
//! A scheduler's fairness is measured against the reference fair schedule
//! (produced by the exact REF algorithm): `Δψ = ‖ψ − ψ*‖_M` is the Manhattan
//! distance between the realized and ideal utility vectors, and `p_tot` is
//! the number of unit-size job parts completed in the reference schedule.
//! Since delaying one unit part by one time moment costs exactly one unit of
//! `ψ_sp`, the ratio is *the average unjustified delay (or speed-up) of a
//! job unit caused by the scheduler's unfairness* — the quantity reported in
//! Tables 1–2 and Figure 10.

use crate::model::{OrgId, Time, Trace};
use crate::schedule::{Schedule, ScheduledJob};
use crate::utility::{sp_vector, Util};
use std::fmt;

/// Per-organization fairness comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrgFairness {
    /// The organization.
    pub org: OrgId,
    /// Its name (from the trace).
    pub name: String,
    /// Realized utility `ψ(u)` under the evaluated scheduler.
    pub utility: Util,
    /// Ideal utility `ψ*(u)` under the reference fair scheduler.
    pub reference: Util,
}

impl OrgFairness {
    /// Signed deviation `ψ(u) − ψ*(u)` (positive = favored).
    pub fn deviation(&self) -> Util {
        self.utility - self.reference
    }
}

/// A fairness report: utilities vs the fair reference, `Δψ` and `Δψ/p_tot`.
#[derive(Clone, Debug, PartialEq)]
pub struct FairnessReport {
    /// Per-organization rows.
    pub per_org: Vec<OrgFairness>,
    /// Manhattan distance `Σ_u |ψ(u) − ψ*(u)|`.
    pub delta_psi: Util,
    /// Unit parts completed in the reference schedule by the horizon.
    pub p_tot: Time,
    /// Evaluation horizon.
    pub horizon: Time,
}

impl FairnessReport {
    /// Builds a report from utility vectors.
    ///
    /// # Panics
    /// Panics if vector lengths disagree with the trace.
    pub fn from_vectors(
        trace: &Trace,
        psi: &[Util],
        psi_ref: &[Util],
        p_tot: Time,
        horizon: Time,
    ) -> Self {
        assert_eq!(psi.len(), trace.n_orgs());
        assert_eq!(psi_ref.len(), trace.n_orgs());
        let per_org: Vec<OrgFairness> = (0..trace.n_orgs())
            .map(|u| OrgFairness {
                org: OrgId(u as u32),
                name: trace.orgs()[u].name.clone(),
                utility: psi[u],
                reference: psi_ref[u],
            })
            .collect();
        let delta_psi = per_org.iter().map(|o| o.deviation().abs()).sum();
        FairnessReport { per_org, delta_psi, p_tot, horizon }
    }

    /// Builds a report by evaluating `ψ_sp` on two schedules at `horizon`.
    pub fn from_schedules(
        trace: &Trace,
        schedule: &Schedule,
        reference: &Schedule,
        horizon: Time,
    ) -> Self {
        let psi = sp_vector(trace, schedule, horizon);
        let psi_ref = sp_vector(trace, reference, horizon);
        let p_tot = reference.completed_units(horizon);
        Self::from_vectors(trace, &psi, &psi_ref, p_tot, horizon)
    }

    /// The headline metric `Δψ / p_tot` (0 when nothing completed).
    pub fn unfairness(&self) -> f64 {
        if self.p_tot == 0 {
            0.0
        } else {
            self.delta_psi as f64 / self.p_tot as f64
        }
    }
}

/// A point of the unfairness time series.
#[derive(Clone, Debug, PartialEq)]
pub struct FairnessPoint {
    /// Sample time.
    pub t: Time,
    /// `Δψ(t) = ‖ψ(t) − ψ*(t)‖₁`.
    pub delta_psi: Util,
    /// Units completed in the reference schedule by `t`.
    pub p_tot: Time,
}

impl FairnessPoint {
    /// `Δψ(t)/p_tot(t)` (0 when nothing completed).
    pub fn unfairness(&self) -> f64 {
        if self.p_tot == 0 {
            0.0
        } else {
            self.delta_psi as f64 / self.p_tot as f64
        }
    }
}

/// The dedup'd, strictly increasing sample grid behind every timeline:
/// up to `samples` times in `(0, horizon]`, the `i`-th at
/// `⌊horizon·i/samples⌋`.
///
/// The multiplication is widened to `u128`, so `horizon · i` cannot
/// overflow [`Time`] even for horizons near `Time::MAX`. Grid points that
/// collapse to `0` or repeat an earlier time (which happens whenever
/// `samples > horizon`) are skipped, so every emitted time is strictly
/// positive and strictly greater than its predecessor; the last emitted
/// time is exactly `horizon` (for `horizon > 0` — a zero horizon yields an
/// empty grid, there being no moments in `(0, 0]`).
///
/// # Panics
/// Panics if `samples == 0` (spec-addressed consumers validate first and
/// surface a typed error instead; see the `timeline` metric family).
pub fn timeline_sample_times(horizon: Time, samples: usize) -> Vec<Time> {
    assert!(samples > 0, "need at least one sample");
    // With samples ≥ horizon, ⌊horizon·i/samples⌋ steps by at most 1 and
    // reaches horizon, so the dedup'd grid is exactly every moment in
    // (0, horizon] — emit it directly instead of spinning O(samples)
    // iterations for the same result (an absurd requested count must not
    // hang the process).
    if samples as u128 >= horizon as u128 {
        return (1..=horizon).collect();
    }
    let mut times = Vec::with_capacity(samples);
    let mut last: Time = 0;
    for i in 1..=samples {
        let t = crate::checked_time::scale_floor(horizon, i as u64, samples as u64);
        if t > last {
            times.push(t);
            last = t;
        }
    }
    times
}

/// Work counters of one [`schedule_series`] sweep, pinning its complexity
/// claims in tests and benches: `events_applied` is bounded by twice the
/// number of schedule entries *independently of the sample count* (each
/// entry is applied once as a start and once as a completion), and
/// `org_evals` is exactly `samples × orgs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Start/completion events applied (≤ 2 × schedule entries, total over
    /// the whole sweep — the single-pass guarantee).
    pub events_applied: usize,
    /// O(1) closed-form evaluations performed (= samples × orgs).
    pub org_evals: usize,
}

/// Per-organization running aggregates of one schedule, advanced through
/// event and sample times in non-decreasing order; `ψ_sp` and completed
/// units are O(1) closed forms at the advanced-to time.
///
/// Running entries are tracked in **elapsed-time (Δ) space** — the moment
/// sums `Σ Δ` and `Σ Δ²` with `Δ = now − s` are pushed forward
/// incrementally as time advances — rather than anchored at absolute
/// starts (`Σ s`, `Σ s²`). That keeps every intermediate on the order of
/// the *true* contribution `Σ Δ(Δ+1)/2`, so the overflow domain matches
/// summing [`crate::utility::sp_value`] per entry: values fit whenever
/// the naive recompute's do, including entries starting or sampled near
/// `Time::MAX`.
#[derive(Clone, Copy, Debug, Default)]
struct OrgAcc {
    /// Σ p over completed entries.
    completed_units: Util,
    /// Σ of executed slot indices of completed entries: Σ p(2s+p−1)/2.
    completed_slot_sum: Util,
    /// Currently running entries.
    running: Util,
    /// Σ (now − s) over running entries, current at `now`.
    run_delta_sum: Util,
    /// Σ (now − s)² over running entries, current at `now`.
    run_delta2_sum: Util,
    /// The time the running moment sums are current at.
    now: Time,
}

impl OrgAcc {
    /// Pushes the running moment sums forward to `t ≥ now`:
    /// `Σ(Δ+d)² = ΣΔ² + 2d·ΣΔ + r·d²`, `Σ(Δ+d) = ΣΔ + r·d`.
    fn advance(&mut self, t: Time) {
        debug_assert!(t >= self.now, "accumulator advanced backwards");
        if self.running > 0 {
            let d = (t - self.now) as Util;
            if d > 0 {
                self.run_delta2_sum += 2 * d * self.run_delta_sum + self.running * d * d;
                self.run_delta_sum += self.running * d;
            }
        }
        self.now = t;
    }

    fn start(&mut self, s: Time) {
        self.advance(s);
        // The new entry joins with Δ = 0: no moment-sum change.
        self.running += 1;
    }

    fn complete(&mut self, s: Time, p: Time, c: Time) {
        self.advance(c);
        let p = p as Util;
        // The entry leaves the running set with Δ = c − s = p.
        self.running -= 1;
        self.run_delta_sum -= p;
        // lint:allow(time-arith) p is shadowed to Util (i128) above: wide.
        self.run_delta2_sum -= p * p;
        self.completed_units += p;
        // Σ_{i=s}^{s+p−1} i = p(2s+p−1)/2, always an integer.
        self.completed_slot_sum += p * (2 * (s as Util) + p - 1) / 2;
    }

    /// `ψ_sp` at `t ≥ now`: completed entries via the linear closed form,
    /// running entries via `Σ Δ(Δ+1)/2 = (ΣΔ² + ΣΔ)/2` — identical
    /// integer arithmetic to summing [`crate::utility::sp_value`] per
    /// entry, so series values are bit-identical to the naive recompute.
    fn psi_at(&mut self, t: Time) -> Util {
        self.advance(t);
        let completed = self.completed_units * t as Util - self.completed_slot_sum;
        completed + (self.run_delta2_sum + self.run_delta_sum) / 2
    }

    /// Unit parts executed strictly before `t ≥ now` (`Σ min(p, t−s)`) —
    /// [`Schedule::completed_units`] restricted to this organization.
    fn units_at(&mut self, t: Time) -> Util {
        self.advance(t);
        self.completed_units + self.run_delta_sum
    }
}

/// Per-organization time series of one schedule at the given strictly
/// increasing sample times, computed by [`schedule_series`]: `psi[i][u]`
/// and `units[i][u]` are organization `u`'s exact `ψ_sp` and completed
/// unit parts at `times[i]`.
#[derive(Clone, Debug)]
pub struct ScheduleSeries {
    /// The sample times the series was evaluated at.
    pub times: Vec<Time>,
    /// `psi[i][u]` = `ψ_sp` of organization `u` at `times[i]` —
    /// bit-identical to `sp_vector(trace, schedule, times[i])`.
    pub psi: Vec<Vec<Util>>,
    /// `units[i][u]` = unit parts of organization `u` executed strictly
    /// before `times[i]`; row sums equal
    /// [`Schedule::completed_units`]`(times[i])`.
    pub units: Vec<Vec<Time>>,
    /// Work counters pinning the single-pass complexity claim.
    pub stats: SweepStats,
}

/// One streaming sweep over a schedule: per-organization `ψ_sp` and
/// completed-unit series at every sample time in a **single pass** over
/// the schedule entries — `O(E log E + samples·orgs)` total (the `log`
/// for sorting completions; starts are already ordered), against
/// `O(samples·E)` for recomputing `sp_vector` per sample.
///
/// `times` must be strictly increasing (as produced by
/// [`timeline_sample_times`]); values are exact and bit-identical to the
/// naive per-sample recompute.
pub fn schedule_series(
    trace: &Trace,
    schedule: &Schedule,
    times: &[Time],
) -> ScheduleSeries {
    debug_assert!(times.windows(2).all(|w| w[0] < w[1]), "times must be increasing");
    let n = trace.n_orgs();
    let entries = schedule.entries();
    // Completion as u128: `s + p` may exceed `Time::MAX` (a job that
    // never finishes within representable time), which the naive path
    // never computes — widen instead of overflowing.
    let completion_of =
        |e: &ScheduledJob| crate::checked_time::wide_completion(e.start, e.proc_time);
    // Entries are kept in start order by `Schedule`; completions need
    // their own order (one sort, done once per sweep).
    let mut by_completion: Vec<usize> = (0..entries.len()).collect();
    by_completion.sort_by_key(|&i| completion_of(&entries[i]));

    let mut acc = vec![OrgAcc::default(); n];
    let mut stats = SweepStats::default();
    let (mut si, mut ci) = (0usize, 0usize);
    let mut psi = Vec::with_capacity(times.len());
    let mut units = Vec::with_capacity(times.len());
    for &t in times {
        // Merge starts and completions in global time order: the Δ-space
        // accumulators advance monotonically, so each organization must
        // see its events in non-decreasing time. Ties prefer the start
        // (an entry's own completion is always strictly later: p ≥ 1).
        loop {
            let next_start = entries.get(si).map(|e| e.start);
            let next_comp = by_completion
                .get(ci)
                .map(|&i| completion_of(&entries[i]))
                .filter(|&c| c <= t as u128);
            match (next_start, next_comp) {
                (Some(s), c) if s <= t && c.is_none_or(|c| s as u128 <= c) => {
                    acc[entries[si].org.index()].start(s);
                    si += 1;
                }
                (_, Some(c)) => {
                    let e = &entries[by_completion[ci]];
                    // c ≤ t ≤ Time::MAX, so the cast is exact.
                    acc[e.org.index()].complete(e.start, e.proc_time, c as Time);
                    ci += 1;
                }
                _ => break,
            }
            stats.events_applied += 1;
        }
        psi.push(acc.iter_mut().map(|a| a.psi_at(t)).collect());
        units.push(acc.iter_mut().map(|a| a.units_at(t) as Time).collect());
        stats.org_evals += n;
    }
    ScheduleSeries { times: times.to_vec(), psi, units, stats }
}

/// The unfairness time series `Δψ(t)/p_tot(t)` at up to `samples` evenly
/// spaced times in `(0, horizon]` (the dedup'd grid of
/// [`timeline_sample_times`] — strictly increasing, strictly positive,
/// ending exactly at `horizon`).
///
/// Definition 3.1 requires fairness *at every time moment*, not just
/// asymptotically ("we want to avoid the case in which an organization is
/// disfavored in one, possibly long, time period and then favored in the
/// next one"); this timeline makes a scheduler's responsiveness visible.
///
/// Evaluated by the streaming sweep of [`schedule_series`]: one pass over
/// each schedule's entries, `O(E log E + samples·orgs)`, bit-identical to
/// the naive per-sample recompute kept as [`fairness_timeline_oracle`].
/// The final point always equals
/// [`FairnessReport::from_schedules`]`(…, horizon)` on `delta_psi`/`p_tot`.
///
/// # Panics
/// Panics if `samples == 0`. Spec-addressed consumers (the `timeline`
/// metric family) validate the sample count first and surface a typed
/// error instead of this contract panic.
pub fn fairness_timeline(
    trace: &Trace,
    schedule: &Schedule,
    reference: &Schedule,
    horizon: Time,
    samples: usize,
) -> Vec<FairnessPoint> {
    assert!(samples > 0, "need at least one sample");
    let times = timeline_sample_times(horizon, samples);
    let eval = schedule_series(trace, schedule, &times);
    let refs = schedule_series(trace, reference, &times);
    times
        .iter()
        .enumerate()
        .map(|(i, &t)| FairnessPoint {
            t,
            delta_psi: eval.psi[i]
                .iter()
                .zip(&refs.psi[i])
                .map(|(a, b)| (a - b).abs())
                .sum(),
            p_tot: refs.units[i].iter().sum(),
        })
        .collect()
}

/// The naive per-sample recompute of [`fairness_timeline`]: a fresh
/// `sp_vector` + [`Schedule::completed_units`] per sample time,
/// `O(samples·E)`. Kept as the property-test oracle (the streaming sweep
/// is pinned bit-identical to it) and as the scaling baseline the bench
/// trajectory rows time against.
pub fn fairness_timeline_oracle(
    trace: &Trace,
    schedule: &Schedule,
    reference: &Schedule,
    horizon: Time,
    samples: usize,
) -> Vec<FairnessPoint> {
    assert!(samples > 0, "need at least one sample");
    timeline_sample_times(horizon, samples)
        .into_iter()
        .map(|t| {
            let psi = sp_vector(trace, schedule, t);
            let psi_ref = sp_vector(trace, reference, t);
            let delta_psi = psi.iter().zip(&psi_ref).map(|(a, b)| (a - b).abs()).sum();
            FairnessPoint { t, delta_psi, p_tot: reference.completed_units(t) }
        })
        .collect()
}

impl fmt::Display for FairnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fairness @ t={} (Δψ = {}, p_tot = {}, Δψ/p_tot = {:.4})",
            self.horizon,
            self.delta_psi,
            self.p_tot,
            self.unfairness()
        )?;
        writeln!(f, "{:<16} {:>16} {:>16} {:>12}", "org", "ψ", "ψ*", "ψ−ψ*")?;
        for o in &self.per_org {
            writeln!(
                f,
                "{:<16} {:>16} {:>16} {:>12}",
                o.name,
                o.utility,
                o.reference,
                o.deviation()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{JobId, MachineId};
    use crate::schedule::ScheduledJob;
    use proptest::prelude::*;

    fn trace2() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        b.job(a, 0, 2).job(c, 0, 2);
        b.build().unwrap()
    }

    fn sched(entries: &[(u32, u32, u32, Time, Time)]) -> Schedule {
        entries
            .iter()
            .map(|&(j, o, m, s, p)| ScheduledJob {
                job: JobId(j),
                org: OrgId(o),
                machine: MachineId(m),
                start: s,
                proc_time: p,
            })
            .collect()
    }

    #[test]
    fn identical_schedules_are_perfectly_fair() {
        let t = trace2();
        let s = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, 0, 2)]);
        let r = FairnessReport::from_schedules(&t, &s, &s, 10);
        assert_eq!(r.delta_psi, 0);
        assert_eq!(r.unfairness(), 0.0);
        assert_eq!(r.p_tot, 4);
    }

    #[test]
    fn deviation_counts_both_directions() {
        let t = trace2();
        // Reference: both in parallel. Evaluated: serial on one machine
        // (org b delayed by 2).
        let reference = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, 0, 2)]);
        let eval = sched(&[(0, 0, 0, 0, 2), (1, 1, 0, 2, 2)]);
        let r = FairnessReport::from_schedules(&t, &eval, &reference, 10);
        // Org b's two units each delayed 2 -> psi drops by 4.
        assert_eq!(r.per_org[1].deviation(), -4);
        assert_eq!(r.per_org[0].deviation(), 0);
        assert_eq!(r.delta_psi, 4);
        assert!((r.unfairness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_reference_yields_zero_ratio() {
        let t = trace2();
        let empty = Schedule::new();
        let r = FairnessReport::from_schedules(&t, &empty, &empty, 0);
        assert_eq!(r.unfairness(), 0.0);
    }

    #[test]
    fn timeline_monotone_sampling() {
        let t = trace2();
        let reference = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, 0, 2)]);
        let eval = sched(&[(0, 0, 0, 0, 2), (1, 1, 0, 2, 2)]);
        let series = fairness_timeline(&t, &eval, &reference, 8, 4);
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].t, 2);
        assert_eq!(series[3].t, 8);
        // Unfairness accumulates while org b's units are delayed.
        assert!(series[3].delta_psi >= series[0].delta_psi);
        // At the end: 4 (two units delayed 2 each).
        assert_eq!(series[3].delta_psi, 4);
        assert!(series[3].unfairness() > 0.0);
    }

    #[test]
    #[should_panic]
    fn timeline_rejects_zero_samples() {
        let t = trace2();
        let s = Schedule::new();
        let _ = fairness_timeline(&t, &s, &s, 10, 0);
    }

    #[test]
    #[should_panic]
    fn sample_grid_rejects_zero_samples() {
        let _ = timeline_sample_times(10, 0);
    }

    /// Regression: the old grid emitted `⌊horizon·i/samples⌋` verbatim, so
    /// `samples > horizon` produced duplicate points (including `t = 0`).
    /// The dedup'd grid is strictly increasing, strictly positive, and ends
    /// exactly at the horizon.
    #[test]
    fn sample_grid_dedups_when_samples_exceed_horizon() {
        assert_eq!(timeline_sample_times(5, 12), [1, 2, 3, 4, 5]);
        // An absurd requested count returns instantly with the same grid
        // (the fast path), rather than iterating per requested sample.
        assert_eq!(timeline_sample_times(5, usize::MAX), [1, 2, 3, 4, 5]);
        assert_eq!(timeline_sample_times(1, 100), [1]);
        assert_eq!(timeline_sample_times(3, 3), [1, 2, 3]);
        assert_eq!(timeline_sample_times(8, 4), [2, 4, 6, 8]);
        // A zero horizon has no moments in (0, 0].
        assert_eq!(timeline_sample_times(0, 7), [] as [Time; 0]);
        for (horizon, samples) in [(5u64, 12usize), (7, 3), (100, 64), (2, 2)] {
            let times = timeline_sample_times(horizon, samples);
            assert!(times.windows(2).all(|w| w[0] < w[1]), "not increasing");
            assert!(times.iter().all(|&t| t > 0 && t <= horizon));
            assert_eq!(*times.last().unwrap(), horizon);
            assert!(times.len() <= samples);
        }
    }

    /// Regression: the old grid computed `horizon * i` in `Time`, which
    /// overflows for horizons past `Time::MAX / samples`. The widened
    /// multiply keeps the grid exact all the way to `Time::MAX`, and the
    /// streaming sweep evaluates there without touching `t²` once every
    /// entry has completed.
    #[test]
    fn timeline_survives_near_max_horizons() {
        let horizon = Time::MAX;
        let times = timeline_sample_times(horizon, 4);
        assert_eq!(times.len(), 4);
        assert_eq!(*times.last().unwrap(), horizon);
        assert!(times.windows(2).all(|w| w[0] < w[1]));

        let t = trace2();
        let reference = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, 0, 2)]);
        let eval = sched(&[(0, 0, 0, 0, 2), (1, 1, 0, 2, 2)]);
        let series = fairness_timeline(&t, &eval, &reference, horizon, 4);
        assert_eq!(series.len(), 4);
        // Everything completed long ago: Δψ is the terminal 4, p_tot the
        // full 4 units, at every huge sample time.
        for p in &series {
            assert_eq!(p.delta_psi, 4);
            assert_eq!(p.p_tot, 4);
        }
        let report = FairnessReport::from_schedules(&t, &eval, &reference, horizon);
        let last = series.last().unwrap();
        assert_eq!(last.t, horizon);
        assert_eq!(last.delta_psi, report.delta_psi);
        assert_eq!(last.p_tot, report.p_tot);
    }

    /// Regression: the Δ-space accumulators must handle entries that
    /// start near `Time::MAX` and are still *running* at the sampled
    /// times (an absolute-time formulation would square `s` or `t` and
    /// overflow `Util` even though the true values are tiny). The honest
    /// pin is bit-identity with the naive oracle, which never leaves the
    /// per-entry closed form.
    #[test]
    fn timeline_handles_running_entries_near_max_times() {
        let t = trace2();
        let horizon = Time::MAX;
        // Org a finished eons ago; org b starts 100 moments before the
        // end of time and runs past it (completion overflows Time).
        let eval = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, Time::MAX - 100, 200)]);
        let reference = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, Time::MAX - 150, 200)]);
        let fast = fairness_timeline(&t, &eval, &reference, horizon, 4);
        let naive = fairness_timeline_oracle(&t, &eval, &reference, horizon, 4);
        assert_eq!(fast, naive);
        // At t = MAX, org b has executed 100 units (delayed 50 vs the
        // reference's 150): ψ gaps of a delayed part are per-slot exact.
        let last = fast.last().unwrap();
        assert_eq!(last.t, horizon);
        assert!(last.delta_psi > 0);
    }

    #[test]
    fn timeline_final_point_equals_fairness_report() {
        let t = trace2();
        let reference = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, 0, 2)]);
        let eval = sched(&[(0, 0, 0, 0, 2), (1, 1, 0, 2, 2)]);
        for (horizon, samples) in [(10u64, 5usize), (3, 17), (7, 1), (100, 64)] {
            let series = fairness_timeline(&t, &eval, &reference, horizon, samples);
            let report = FairnessReport::from_schedules(&t, &eval, &reference, horizon);
            let last = series.last().expect("positive horizon yields points");
            assert_eq!(last.t, horizon);
            assert_eq!(last.delta_psi, report.delta_psi);
            assert_eq!(last.p_tot, report.p_tot);
            assert_eq!(last.unfairness().to_bits(), report.unfairness().to_bits());
        }
    }

    /// The single-pass guarantee, pinned by counters rather than timing:
    /// raising the sample count must not revisit schedule entries.
    #[test]
    fn sweep_is_single_pass_over_entries() {
        let t = trace2();
        let s = sched(&[(0, 0, 0, 0, 2), (1, 1, 0, 2, 2)]);
        for samples in [1usize, 4, 64, 1024] {
            let times = timeline_sample_times(1000, samples);
            let series = schedule_series(&t, &s, &times);
            assert!(
                series.stats.events_applied <= 2 * s.len(),
                "entries revisited at samples={samples}: {:?}",
                series.stats
            );
            assert_eq!(series.stats.org_evals, times.len() * t.n_orgs());
        }
    }

    proptest! {
        /// The streaming sweep is bit-identical to the naive per-sample
        /// oracle on random traces and (possibly partial, overlapping)
        /// schedules, for any horizon/sample-count combination.
        #[test]
        fn prop_streaming_timeline_matches_oracle(
            jobs in proptest::collection::vec((0u64..40, 1u64..12), 1..14),
            orgs in 1usize..4,
            delays in proptest::collection::vec(0u64..9, 14),
            skip in 0usize..3,
            horizon in 1u64..120,
            samples in 1usize..40,
        ) {
            let mut b = Trace::builder();
            let ids: Vec<OrgId> =
                (0..orgs).map(|u| b.org(format!("o{u}"), 1)).collect();
            for (i, &(r, p)) in jobs.iter().enumerate() {
                b.job(ids[i % orgs], r, p);
            }
            let trace = b.build().unwrap();
            // Two schedules over the same jobs with different arbitrary
            // delays; entries may be partial (skipped jobs) and need not
            // be valid — the timeline is defined on any entry set.
            let build = |extra: u64, skip: usize| -> Schedule {
                let mut clock = [0u64; 2];
                trace
                    .jobs()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i >= skip)
                    .map(|(i, j)| {
                        let m = i % 2;
                        let start = clock[m].max(j.release)
                            + delays[i % delays.len()]
                            + extra * (i as u64 % 3);
                        clock[m] = start + j.proc_time;
                        ScheduledJob {
                            job: j.id,
                            org: j.org,
                            machine: MachineId(m as u32),
                            start,
                            proc_time: j.proc_time,
                        }
                    })
                    .collect()
            };
            let eval = build(1, skip);
            let reference = build(0, 0);
            let fast = fairness_timeline(&trace, &eval, &reference, horizon, samples);
            let naive =
                fairness_timeline_oracle(&trace, &eval, &reference, horizon, samples);
            prop_assert_eq!(&fast, &naive);
            // And the per-org series agree with sp_vector at every time.
            let times = timeline_sample_times(horizon, samples);
            let series = schedule_series(&trace, &eval, &times);
            for (i, &t) in times.iter().enumerate() {
                prop_assert_eq!(&series.psi[i], &sp_vector(&trace, &eval, t));
                prop_assert_eq!(
                    series.units[i].iter().sum::<Time>(),
                    eval.completed_units(t)
                );
            }
        }
    }

    #[test]
    fn display_contains_orgs() {
        let t = trace2();
        let s = sched(&[(0, 0, 0, 0, 2), (1, 1, 1, 0, 2)]);
        let r = FairnessReport::from_schedules(&t, &s, &s, 10);
        let text = format!("{r}");
        assert!(text.contains("a"));
        assert!(text.contains("p_tot = 4"));
    }
}
