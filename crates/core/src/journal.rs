//! Crash-safe filesystem primitives shared by the durable runners: the
//! atomic write-then-rename commit and the torn-tail-tolerant line
//! journal.
//!
//! Extracted from `fairsched-experiment` (PR 7) so the experiment runner
//! and the online serving daemon (`fairsched-serve`) share one
//! implementation of the two idioms their durability proofs rest on:
//!
//! * **Atomic commit** — a file either carries its complete contents or
//!   does not exist: [`write_scratch`] writes `<path minus extension>
//!   .json.tmp`, [`commit_scratch`] renames it into place (rename is
//!   atomic on POSIX filesystems), and [`atomic_write`] is the two steps
//!   fused. Callers that interleave fault-injection sites between the
//!   steps (the experiment runner's `FAIRSCHED_FAILPOINTS`) call the two
//!   halves themselves.
//! * **Tolerant append-only journal** — [`append_line`] appends one line
//!   with a single `write_all` (the smallest torn window the filesystem
//!   allows); [`read_lines_tolerant`] decodes lines until the first
//!   undecodable one, which marks the journal truncated instead of
//!   failing the read — a torn final line is an expected crash artifact,
//!   not corruption.
//!
//! Errors are [`FsError`]: the interrupted operation, the path, and the
//! rendered OS error — the exact fields `fairsched_sim::SimError::Io`
//! carries, so downstream crates convert losslessly.

use std::io::Write;
use std::path::{Path, PathBuf};

/// A failed filesystem step: which operation, on which path, and the OS
/// error. Rendered strings keep the type `Clone` (like the typed
/// simulation errors it converts into) and serializable into cell files.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FsError {
    /// The attempted operation (`read`, `write`, `rename`, `append`, …).
    pub op: String,
    /// The path involved.
    pub path: String,
    /// The rendered OS error.
    pub message: String,
}

impl FsError {
    /// Wraps a [`std::io::Error`] with the operation and path it
    /// interrupted.
    pub fn new(op: &str, path: &Path, e: &std::io::Error) -> Self {
        FsError {
            op: op.to_string(),
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "io error ({} {}): {}", self.op, self.path, self.message)
    }
}

impl std::error::Error for FsError {}

/// The scratch (pre-commit) path of `path`: `path` with its extension
/// replaced by `json.tmp` — `cells/ab12.json` stages as
/// `cells/ab12.json.tmp`. The historical experiment-runner convention,
/// kept byte-identical so existing run directories stay recognizable.
pub fn scratch_path(path: &Path) -> PathBuf {
    path.with_extension("json.tmp")
}

/// Writes `contents` to the scratch path of `path` and returns it. The
/// first half of the atomic commit; pair with [`commit_scratch`].
pub fn write_scratch(path: &Path, contents: &str) -> Result<PathBuf, FsError> {
    let tmp = scratch_path(path);
    std::fs::write(&tmp, contents).map_err(|e| FsError::new("write", &tmp, &e))?;
    Ok(tmp)
}

/// Renames the scratch file into place — the commit point. After this
/// returns, `path` carries the complete contents; before it, `path` is
/// untouched (a crash between the halves leaves only the scratch file,
/// which the next run overwrites).
pub fn commit_scratch(tmp: &Path, path: &Path) -> Result<(), FsError> {
    std::fs::rename(tmp, path).map_err(|e| FsError::new("rename", path, &e))
}

/// [`write_scratch`] + [`commit_scratch`]: `path` atomically assumes
/// `contents` — readers see either the old complete file or the new one,
/// never a partial write.
pub fn atomic_write(path: &Path, contents: &str) -> Result<(), FsError> {
    let tmp = write_scratch(path, contents)?;
    commit_scratch(&tmp, path)
}

/// Appends `line` plus a newline to the journal at `path`, creating the
/// file if needed. A single `write_all` of one line keeps the torn
/// window as small as the filesystem allows.
pub fn append_line(path: &Path, line: &str) -> Result<(), FsError> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| FsError::new("open-append", path, &e))?;
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    file.write_all(buf.as_bytes()).map_err(|e| FsError::new("append", path, &e))
}

/// Reads a line journal at `path`, decoding each non-blank line with
/// `decode`. A missing file is the empty journal. Decoding stops at the
/// first undecodable line, which sets the returned `truncated` flag
/// rather than erroring — entries after the first bad line are not
/// trusted (the signature of a crash mid-append).
pub fn read_lines_tolerant<T>(
    path: &Path,
    decode: impl Fn(&str) -> Option<T>,
) -> Result<(Vec<T>, bool), FsError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), false))
        }
        Err(e) => return Err(FsError::new("read", path, &e)),
    };
    let mut entries = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match decode(line) {
            Some(entry) => entries.push(entry),
            None => return Ok((entries, true)),
        }
    }
    Ok((entries, false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fairsched-core-journal-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_leaves_no_scratch() {
        let dir = temp_dir("atomic");
        let path = dir.join("out.json");
        atomic_write(&path, "{\"a\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":1}");
        assert!(!scratch_path(&path).exists());
        // Overwrite is atomic too.
        atomic_write(&path, "{\"a\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scratch_then_commit_matches_fused_form() {
        let dir = temp_dir("halves");
        let path = dir.join("cell.json");
        let tmp = write_scratch(&path, "body").unwrap();
        assert_eq!(tmp, scratch_path(&path));
        assert!(!path.exists(), "target must stay untouched before commit");
        commit_scratch(&tmp, &path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "body");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_then_read_preserves_order() {
        let dir = temp_dir("order");
        let path = dir.join("journal.jsonl");
        for line in ["one", "two", "three"] {
            append_line(&path, line).unwrap();
        }
        let (entries, truncated) =
            read_lines_tolerant(&path, |l| Some(l.to_string())).unwrap();
        assert_eq!(entries, vec!["one", "two", "three"]);
        assert!(!truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_empty_journal() {
        let path = std::env::temp_dir().join("fairsched-core-journal-none.jsonl");
        let _ = std::fs::remove_file(&path);
        let (entries, truncated) =
            read_lines_tolerant(&path, |l| Some(l.to_string())).unwrap();
        assert!(entries.is_empty());
        assert!(!truncated);
    }

    #[test]
    fn torn_final_line_sets_truncated() {
        let dir = temp_dir("torn");
        let path = dir.join("journal.jsonl");
        append_line(&path, "good").unwrap();
        // Simulate a kill mid-append: a partial line with no newline.
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"ba").unwrap();
        drop(f);
        let (entries, truncated) =
            read_lines_tolerant(&path, |l| (l == "good").then(|| l.to_string())).unwrap();
        assert_eq!(entries, vec!["good"]);
        assert!(truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn blank_lines_are_skipped_not_truncating() {
        let dir = temp_dir("blank");
        let path = dir.join("journal.jsonl");
        std::fs::write(&path, "a\n\n  \nb\n").unwrap();
        let (entries, truncated) =
            read_lines_tolerant(&path, |l| Some(l.to_string())).unwrap();
        assert_eq!(entries, vec!["a", "b"]);
        assert!(!truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
