//! Game-theoretic analysis of workloads: materialize the cooperative game
//! a trace induces and inspect it with `coopgame`'s tools.
//!
//! The paper's fairness machinery never materializes the full `2^k` value
//! table during scheduling (the lattice keeps live sub-simulations
//! instead), but for *analysis* — is this workload's game supermodular?
//! whose Shapley share is largest? is the Shapley allocation in the core? —
//! an explicit [`TabularGame`] is the right object. This is how the
//! Proposition 5.5 counterexample generalizes to arbitrary traces.

use crate::model::{Time, Trace};
use crate::scheduler::lattice::{CoalitionLattice, Policy};
use crate::utility::Util;
use coopgame::{Coalition, TabularGame};

/// The cooperative game induced by `trace` at time `t`: the value of
/// coalition `C` is the total `ψ_sp` of a greedy FIFO schedule of `C`'s
/// jobs on `C`'s pooled machines.
///
/// FIFO is the documented convention (as in RAND's sampled coalitions):
/// for unit-size jobs the value is policy-independent (Proposition 5.4);
/// for general jobs it is a canonical greedy representative.
///
/// # Panics
/// Panics if the trace has more than 16 organizations.
pub fn induced_game(trace: &Trace, t: Time) -> TabularGame {
    let values = induced_values(trace, t);
    TabularGame::from_values(values.into_iter().map(|v| v as f64).collect())
}

/// The exact integer value table of [`induced_game`], indexed by coalition
/// bitmask.
pub fn induced_values(trace: &Trace, t: Time) -> Vec<Util> {
    let k = trace.n_orgs();
    assert!(k <= 16, "analysis supports at most 16 organizations");
    let machines: Vec<usize> = trace.orgs().iter().map(|o| o.n_machines).collect();
    let all: Vec<Coalition> = (1u64..(1 << k)).map(Coalition::from_bits).collect();
    let mut lattice = CoalitionLattice::with_coalitions(&machines, &all, Policy::Fifo);
    for job in trace.jobs() {
        if job.release > t {
            break;
        }
        lattice.release(job.release, job.org, job.proc_time);
    }
    lattice.settle(t);
    (0u64..(1 << k)).map(|bits| lattice.value_of(Coalition::from_bits(bits), t)).collect()
}

/// Exact scaled Shapley contributions `φ(u)·k!` of the induced game.
pub fn shapley_contributions_scaled(trace: &Trace, t: Time) -> Vec<i128> {
    let values = induced_values(trace, t);
    coopgame::shapley::shapley_from_table_scaled(trace.n_orgs(), &values)
}

/// Shapley contributions `φ(u)` of the induced game as `f64`.
pub fn shapley_contributions(trace: &Trace, t: Time) -> Vec<f64> {
    let scale = coopgame::factorial(trace.n_orgs()) as f64;
    shapley_contributions_scaled(trace, t).into_iter().map(|v| v as f64 / scale).collect()
}

/// The Theorem 5.3 order-vs-reverse gap: `m` identical single-job
/// organizations share one machine; `σ_ord` serves them in index order,
/// `σ_rev` in reverse. Returns `‖ψ_ord − ψ_rev‖₁ / ‖ψ_ord‖₁`, which tends
/// to 1 as `m` grows — the reason no polynomial `(1/2 − ε)`-approximation
/// of the fair utility vector can exist unless P = NP: an approximation
/// that good could tell the two orders apart.
pub fn order_reverse_gap(m: usize, proc_time: Time) -> f64 {
    assert!(m >= 2);
    let t_eval = m as Time * proc_time;
    let psi = |position: usize| -> Util {
        crate::utility::sp_value(position as Time * proc_time, proc_time, t_eval)
    };
    let ord: Vec<Util> = (0..m).map(psi).collect();
    let rev: Vec<Util> = (0..m).rev().map(psi).collect();
    let delta: Util = ord.iter().zip(&rev).map(|(a, b)| (a - b).abs()).sum();
    let norm: Util = ord.iter().sum();
    delta as f64 / norm as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopgame::properties::{is_in_core, is_supermodular};
    use coopgame::Player;

    fn prop_5_5_trace() -> Trace {
        let mut b = Trace::builder();
        let a = b.org("a", 1);
        let c = b.org("b", 1);
        let _d = b.org("c", 1);
        b.jobs(a, 0, 1, 2);
        b.jobs(c, 0, 1, 2);
        b.build().unwrap()
    }

    #[test]
    fn induced_game_matches_proposition_5_5() {
        let g = induced_game(&prop_5_5_trace(), 2);
        assert_eq!(g.value([Player(0), Player(2)].into_iter().collect()), 4.0);
        assert_eq!(g.value([Player(1), Player(2)].into_iter().collect()), 4.0);
        assert_eq!(g.value(Coalition::grand(3)), 7.0);
        assert_eq!(g.value(Coalition::singleton(Player(2))), 0.0);
        assert!(!is_supermodular(&g));
    }

    #[test]
    fn contributions_are_efficient_and_symmetric() {
        let trace = prop_5_5_trace();
        let phi = shapley_contributions(&trace, 2);
        let total: f64 = phi.iter().sum();
        assert!((total - 7.0).abs() < 1e-9);
        // a and b are symmetric.
        assert!((phi[0] - phi[1]).abs() < 1e-9);
        // The jobless c still earns for its machine.
        assert!(phi[2] > 0.0);
    }

    #[test]
    fn shapley_of_induced_game_may_leave_the_core() {
        // Nothing guarantees core membership for non-supermodular games;
        // just exercise the predicate end to end.
        let trace = prop_5_5_trace();
        let g = induced_game(&trace, 2);
        let phi = shapley_contributions(&trace, 2);
        let _ = is_in_core(&g, &phi); // either answer is legal; must not panic
    }

    #[test]
    fn empty_coalition_is_zero() {
        let values = induced_values(&prop_5_5_trace(), 10);
        assert_eq!(values[0], 0);
        assert_eq!(values.len(), 8);
    }

    #[test]
    fn theorem_5_3_gap_tends_to_one() {
        // ‖ψ_ord − ψ_rev‖/‖ψ_ord‖ grows toward 1 with the number of orgs.
        let g2 = order_reverse_gap(2, 5);
        let g8 = order_reverse_gap(8, 5);
        let g40 = order_reverse_gap(40, 5);
        assert!(g2 < g8 && g8 < g40, "{g2} {g8} {g40}");
        assert!(g40 > 0.6, "gap must approach 1, got {g40}");
        assert!(g40 < 1.0);
    }

    #[test]
    fn gap_nearly_independent_of_job_size() {
        // The ratio is driven by m; p only enters through the small
        // −p(p−1)/2 per-job term, so large p barely moves it.
        assert!((order_reverse_gap(10, 20) - order_reverse_gap(10, 50)).abs() < 0.02);
    }
}
