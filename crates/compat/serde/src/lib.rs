//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small serialization facade with serde-compatible *spelling*: a
//! [`Serialize`]/[`Deserialize`] trait pair (plus derive macros re-exported
//! from `serde_derive`) that route through an owned JSON [`Value`] tree
//! instead of serde's zero-copy visitor machinery. `serde_json` in this
//! workspace renders/parses that tree.
//!
//! Supported shapes — everything the repo derives or writes by hand:
//! structs with named fields, newtype structs, the primitive/`String`
//! types, `Option<T>`, `Vec<T>`, slices, and string-keyed maps.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned JSON document.
///
/// Numbers keep their literal text so integer fidelity (including the
/// `i128` utilities this workspace uses) survives a round trip.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A numeric literal, verbatim.
    Number(String),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Renders as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Renders as indented JSON (two spaces).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(n),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.render(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types renderable as a JSON [`Value`].
pub trait Serialize {
    /// Converts to a JSON value tree.
    fn to_value(&self) -> Value;
}

/// A deserialization failure: what was expected, what was found.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// An "expected X for Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("expected {what} for {context}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types reconstructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Builds from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetches and deserializes a struct field (derive-macro support).
/// Missing keys read as `Null` so `Option` fields default to `None`.
pub fn field<T: Deserialize>(v: &Value, name: &str, ty: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(fv) => {
            T::from_value(fv).map_err(|e| DeError(format!("{ty}.{name}: {}", e.0)))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError(format!("{ty}: missing field {name:?}"))),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .parse::<$t>()
                        .map_err(|_| DeError(format!("number {n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::Number(format!("{self}"))
                } else {
                    Value::Null // serde_json convention for NaN/inf
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .parse::<$t>()
                        .map_err(|_| DeError(format!("bad float literal {n}"))),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:ident . $idx:tt),+))*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($n: Deserialize),+> Deserialize for ($($n,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => Ok((
                        $($n::from_value(
                            items.get($idx).unwrap_or(&Value::Null),
                        )?,)+
                    )),
                    _ => Err(DeError::expected("array", "tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            _ => Err(DeError::expected("object", "BTreeMap")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<_> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        let big: i128 = i128::MAX;
        assert_eq!(i128::from_value(&big.to_value()).unwrap(), big);
        assert_eq!(
            String::from_value(&"hi \"there\"\n".to_string().to_value()).unwrap(),
            "hi \"there\"\n"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn escaping() {
        assert_eq!("a\"b\\c\n".to_string().to_value().to_json(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number("1".into())),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.to_json(), r#"{"a":1,"b":[true]}"#);
        let pretty = v.to_json_pretty();
        assert!(pretty.contains("\n  \"a\": 1"), "{pretty}");
    }
}
