//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! with a simple measure-and-print harness: each benchmark runs a warmup
//! iteration plus `sample_size` timed iterations and reports min / mean
//! wall-clock time. No statistics, plots, or HTML reports.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.default_sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {}", name);
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, sample_size }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("  {}", id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("  {}", id.0), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (a name, optionally with a parameter).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) runs and
/// times the measured routine.
pub struct Bencher {
    iterations: usize,
    total_nanos: u128,
    min_nanos: u128,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup (untimed).
        black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            let nanos = start.elapsed().as_nanos();
            self.total_nanos += nanos;
            self.min_nanos = self.min_nanos.min(nanos);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { iterations: sample_size, total_nanos: 0, min_nanos: u128::MAX };
    f(&mut b);
    if b.total_nanos == 0 && b.min_nanos == u128::MAX {
        println!("{label}: no measurement (iter was never called)");
        return;
    }
    let mean = b.total_nanos / sample_size.max(1) as u128;
    println!(
        "{label}: min {} mean {} ({} samples)",
        format_nanos(b.min_nanos),
        format_nanos(mean),
        sample_size,
    );
}

fn format_nanos(n: u128) -> String {
    if n >= 1_000_000_000 {
        format!("{:.3}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.3}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.3}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("f", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::new("p", 7), &7usize, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        // warmup + 3 samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("ref", 5).0, "ref/5");
        assert_eq!(BenchmarkId::from_parameter(15).0, "15");
    }
}
