//! Offline stand-in for `proptest`.
//!
//! Provides the macro/strategy surface this workspace's property tests
//! use — `proptest! { #![proptest_config(..)] fn case(x in strategy) {..} }`,
//! range and tuple strategies, `collection::vec`, `prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros — executed as seeded random
//! sampling. Two honest differences from real proptest: no shrinking (a
//! failing case reports its inputs but is not minimized) and the per-test
//! RNG seed is a stable hash of the test path (deterministic across runs,
//! like a checked-in `proptest-regressions` file would be).

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident . $idx:tt),+ ))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Anything usable as a size specification for [`vec`]: an exact
    /// length or a half-open range of lengths.
    pub trait SizeRange {
        /// Inclusive lower and exclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// A strategy yielding vectors of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64;
            let len = self.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test execution configuration and RNG.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Copy, Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The per-test generator: SplitMix64 seeded from a stable hash of the
    /// test's module path, so runs are deterministic without a regressions
    /// file.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from an arbitrary label (the test path).
        pub fn from_label(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The everything-you-need import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` seeded random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr)) => {};
    (cfg = ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_label(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        Ok(())
                    })();
                if let Err(message) = outcome {
                    panic!(
                        "property {} failed on case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, message,
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg) $($rest)* }
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current property case (counts as a pass) unless the
/// assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u8..10, 2..6), w in collection::vec(0u8..10, 4)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn tuples_and_map(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x > 3);
            prop_assert!(x > 3);
        }
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_label("same");
        let mut b = TestRng::from_label("same");
        for _ in 0..50 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
