//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *small* subset of the `rand` 0.9 API its code actually
//! uses: the [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`] (here a
//! xoshiro256** generator — deterministic per seed, statistically solid
//! for simulation workloads, **not** cryptographically secure), and
//! [`seq::SliceRandom::shuffle`].
//!
//! Determinism is part of the contract: the whole experiment pipeline
//! seeds `StdRng` explicitly and asserts bit-identical reruns.

use std::ops::Range;

/// Types that can be sampled uniformly from a [`Range`] by [`Rng::random_range`].
pub trait SampleUniform: Copy {
    /// Draws a uniform value in `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Modulo bias is < 2^-64 for every span this workspace uses.
                range.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + off) as $t
            }
        }
    )*};
}

uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = rng.unit_f64();
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + (rng.unit_f64() as f32) * (range.end - range.start)
    }
}

/// A source of randomness (the `rand` 0.9 method names this code uses).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[range.start, range.end)`.
    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// A uniform boolean with probability `p` of `true`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.unit_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed across platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_f64_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is essentially impossible.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
