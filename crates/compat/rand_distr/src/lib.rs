//! Offline stand-in for `rand_distr`: exactly the distributions the
//! synthetic workload generator needs — [`Exp`] (inverse-CDF) and
//! [`LogNormal`] (Box–Muller) — behind the same `Distribution` interface.

use rand::Rng;

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter errors (mirrors `rand_distr`'s per-distribution error enums
/// loosely; the workspace only ever `unwrap`s them).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// The exponential distribution `Exp(λ)`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// A new exponential distribution with rate `lambda`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp rate must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - u in (0, 1] keeps ln() finite.
        -(1.0 - rng.unit_f64()).ln() / self.lambda
    }
}

/// The log-normal distribution: `exp(μ + σ·N(0,1))`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// A new log-normal with the given ln-space mean and standard deviation.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if sigma >= 0.0 && sigma.is_finite() && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(ParamError("LogNormal sigma must be non-negative and finite"))
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: one normal draw per sample (the sibling is dropped,
        // keeping the implementation stateless).
        let u1 = (1.0 - rng.unit_f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.unit_f64();
        let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * normal).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_close_to_inverse_rate() {
        let d = Exp::new(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn lognormal_median_close_to_exp_mu() {
        let d = LogNormal::new(300f64.ln(), 1.4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!(median > 200.0 && median < 450.0, "median {median}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
        assert!(LogNormal::new(1.0, -0.5).is_err());
    }

    #[test]
    fn samples_positive() {
        let e = Exp::new(1.0).unwrap();
        let l = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(e.sample(&mut rng) >= 0.0);
            assert!(l.sample(&mut rng) > 0.0);
        }
    }
}
