//! Offline stand-in for `serde_json`, working over the workspace serde
//! facade's [`serde::Value`] tree: `to_string` / `to_string_pretty` render
//! it, `from_str` parses JSON text back into any [`serde::Deserialize`]
//! type.

pub use serde::Value;
use std::fmt;

/// A serialization or parse failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Renders a value as indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(
    value: &T,
) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Converts a value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        Ok(Value::Number(text.to_string()))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // No surrogate-pair support: the workspace never
                            // emits astral-plane escapes.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_reprints() {
        let text = r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5e3}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.to_json(), text);
    }

    #[test]
    fn round_trips_typed() {
        let xs = vec![1u64, 2, u64::MAX];
        let s = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("nul").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse_value(r#""café λ""#).unwrap();
        assert_eq!(v, Value::String("café λ".into()));
    }
}
