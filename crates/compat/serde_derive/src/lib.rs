//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the workspace's
//! offline serde stand-in.
//!
//! Implemented with hand-rolled token parsing (no `syn`/`quote`, which are
//! unavailable offline). Supports exactly the shapes this repo derives:
//! non-generic structs with named fields (serialized as JSON objects) and
//! tuple structs (newtypes serialize as their inner value, wider tuples as
//! arrays). Enums and generic types are rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn parse_struct(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility before `struct`.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!("the offline serde derive does not support enums")
            }
            Some(_) => i += 1,
            None => panic!("derive input is not a struct"),
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("the offline serde derive does not support generic structs ({name})");
        }
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Parsed { name, shape: Shape::Named(named_fields(g.stream())) }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = split_top_level(g.stream()).len();
            Parsed { name, shape: Shape::Tuple(n) }
        }
        other => panic!("unsupported struct body for {name}: {other:?}"),
    }
}

/// Splits a field list on commas that sit outside `<...>` nesting.
/// (Inner parens/brackets/braces arrive as single `Group` tokens, but
/// angle brackets are plain punctuation and must be depth-tracked.)
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tok);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut j = 0;
            loop {
                match chunk.get(j) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => j += 2,
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        j += 1;
                        if let Some(TokenTree::Group(g)) = chunk.get(j) {
                            if g.delimiter() == Delimiter::Parenthesis {
                                j += 1;
                            }
                        }
                    }
                    Some(TokenTree::Ident(id)) => return id.to_string(),
                    other => panic!("cannot find field name in {other:?}"),
                }
            }
        })
        .collect()
}

/// Derives `serde::Serialize` (the workspace's offline facade).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse_struct(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(","))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(","))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the workspace's offline facade).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse_struct(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, \"{f}\", \"{name}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(","))
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) => Ok({name}({inits})),\n\
                     _ => Err(::serde::DeError::expected(\"array\", \"{name}\")),\n\
                 }}",
                inits = inits.join(","),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
