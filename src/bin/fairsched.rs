//! `fairsched` — the command-line front end.
//!
//! Replays a workload (a real SWF log or a synthetic preset) against any
//! scheduler in the registry, reports per-organization utilities, the
//! fairness metric Δψ/p_tot against the exact REF reference, resource
//! utilization, and optionally an ASCII Gantt chart or a JSON report.
//!
//! ```text
//! # synthetic preset
//! fairsched --preset lpc --scheduler directcontr --orgs 5 --horizon 20000
//! # any registry spec works, parameters included
//! fairsched --preset lpc --scheduler rand:perms=75
//! fairsched --preset lpc --scheduler general-ref:util=flowtime
//! # workloads are registry specs too — the whole run is pure data
//! fairsched --workload synth:preset=ricc,scale=0.02,orgs=4 --scheduler fairshare
//! fairsched --workload fpt:k=6 --scheduler rand:perms=15 --horizon 2000
//! # real archive log
//! fairsched --swf ./LPC-EGEE-2004-1.2-cln.swf --machines 70 --orgs 5 \
//!           --scheduler fairshare --horizon 50000
//! # metrics are registry specs too (delay runs the REF reference itself)
//! fairsched --workload fpt:k=3 --metrics delay,psi
//! fairsched --workload fpt:k=3 --metrics delay:norm=ideal,ranking,stretch
//! # the time axis: the per-moment fairness trajectory of Definition 3.1
//! fairsched --workload fpt:k=3 --metrics timeline:samples=64
//! fairsched --workload fpt:k=3 --metrics delay,timeline:samples=32,stat=delta_psi
//! # machine-readable output (carries canonical metric_specs)
//! fairsched --preset lpc --scale 0.1 --json
//! # show the schedule
//! fairsched --preset lpc --scale 0.1 --horizon 500 --gantt
//! ```

use fairsched::core::fairness::FairnessReport;
use fairsched::core::scheduler::registry::Registry;
use fairsched::core::Trace;
use fairsched::sim::gantt::render_gantt;
use fairsched::sim::report::{MetricRegistry, MetricSpec, Report};
use fairsched::sim::{Simulation, DEFAULT_REPORT_METRICS};
use fairsched::workloads::{
    swf, synth_spec, MachineSplit, PresetName, WorkloadContext, WorkloadRegistry,
    WorkloadSpec,
};
use serde::Value;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: fairsched [--workload SPEC | --preset NAME | --swf FILE] [options]

workload:
  --workload SPEC      a workload registry spec: NAME or NAME:key=value,...
                       registered workloads:
{workload_help}
  --preset NAME        sugar for a synth: spec — lpc | pik | ricc | sharcnet
                       (default lpc)
  --scale F            preset scale in (0,1] (default 0.1)
  --swf FILE           sugar for an swf: spec — replay a Standard Workload
                       Format log
  --machines M         machine count (SWF mode; default 64)
  --window-start T     SWF submit window start (default 0)

scheduling:
  --scheduler SPEC     a scheduler registry spec: NAME or NAME:key=value,...
                       (default directcontr); registered schedulers:
{registry_help}
  --orgs K             number of organizations (default 5)
  --horizon T          evaluation horizon (default 20000)
  --seed S             RNG seed (default 42)
  --uniform-split      split machines uniformly instead of Zipf

experiments:
  experiment run SPEC.json [--dir DIR] [--resume]
                       durable resumable grid sweep (crash-safe; see
                       `fairsched experiment --help`)
  experiment status SPEC.json [--dir DIR]
                       progress of a run directory

serving:
  serve --dir DIR [--workload SPEC --scheduler SPEC --seed S]
                       online scheduling daemon over a journaled file
                       queue (crash-safe; see `fairsched serve --help`)
  submit --dir DIR ... drop a job / advance / stop message into the queue

output:
  --metrics SPECS      comma-separated metric registry specs to evaluate
                       (default {default_metrics}); registered metrics:
{metric_help}
  --json               print the full report as JSON (schedule omitted;
                       carries the canonical metric_specs)
  --gantt              print an ASCII Gantt chart (small runs)
  --no-reference       skip the exact REF run (reference-based metrics
                       like delay/ranking then fail with a typed error)",
        default_metrics = DEFAULT_REPORT_METRICS.join(","),
        metric_help = MetricRegistry::shared()
            .help()
            .lines()
            .map(|l| format!("     {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
        workload_help = WorkloadRegistry::shared()
            .help()
            .lines()
            .map(|l| format!("     {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
        registry_help = Registry::default()
            .help()
            .lines()
            .map(|l| format!("     {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
    );
    exit(2)
}

/// `fairsched experiment run|status` — the durable grid runner.
///
/// Exit statuses: 0 on success, 1 on typed errors, 2 on usage errors, and
/// 137 (the SIGKILL status) when an armed `FAIRSCHED_FAILPOINTS` crash
/// site fires — so CI drives simulated and real kills through one path.
fn experiment_main(args: &[String]) -> ! {
    use fairsched::experiment::{
        ExperimentSpec, FaultPlan, Runner, RunnerError, RunnerOptions,
    };

    fn experiment_usage() -> ! {
        eprintln!(
            "usage: fairsched experiment run SPEC.json [--dir DIR] [--resume]
       fairsched experiment status SPEC.json [--dir DIR]

Runs the (workload x scheduler x metric) grid named by an experiment spec
(schema {schema}), committing each cell to DIR/cells/<hash>.json with an
atomic write and journaling progress to DIR/journal.jsonl. `--resume`
skips every intact committed cell, so an interrupted run continues where
it stopped and emits byte-identical report.{{json,csv,txt}}.

DIR defaults to the spec file name with its .json/.experiment.json suffix
replaced by .run. Set FAIRSCHED_FAILPOINTS=site@N[:crash|io];... to
inject deterministic faults (see docs/EXPERIMENTS.md).",
            schema = fairsched::experiment::SPEC_SCHEMA,
        );
        exit(2)
    }

    let (Some(verb), Some(spec_path)) = (args.first(), args.get(1)) else {
        experiment_usage();
    };
    if spec_path.starts_with("--") {
        experiment_usage();
    }
    let mut dir: Option<String> = None;
    let mut resume = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--resume" => {
                resume = true;
                i += 1;
            }
            "--dir" if i + 1 < args.len() => {
                dir = Some(args[i + 1].clone());
                i += 2;
            }
            _ => experiment_usage(),
        }
    }
    let dir = dir.unwrap_or_else(|| {
        let stem = spec_path
            .strip_suffix(".experiment.json")
            .or_else(|| spec_path.strip_suffix(".json"))
            .unwrap_or(spec_path);
        format!("{stem}.run")
    });
    let text = std::fs::read_to_string(spec_path).unwrap_or_else(|e| {
        eprintln!("cannot read {spec_path}: {e}");
        exit(1)
    });
    let spec = ExperimentSpec::from_json_str(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    match verb.as_str() {
        "run" => {
            let faults = match std::env::var("FAIRSCHED_FAILPOINTS") {
                Ok(text) => FaultPlan::parse(&text).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    exit(1)
                }),
                Err(_) => FaultPlan::none(),
            };
            let mut runner = Runner::new(spec, &dir, RunnerOptions { resume, faults });
            match runner.run() {
                Ok(s) => {
                    println!(
                        "{} cells: {} computed, {} skipped, {} failed ({} retries); reports in {dir}",
                        s.total, s.computed, s.skipped, s.failed, s.retried
                    );
                    exit(if s.failed > 0 { 1 } else { 0 })
                }
                Err(RunnerError::Crash { site }) => {
                    eprintln!("simulated crash at fail point {site}");
                    exit(137)
                }
                Err(e) => {
                    eprintln!("{e}");
                    exit(1)
                }
            }
        }
        "status" => match Runner::status(&spec, std::path::Path::new(&dir)) {
            Ok(s) => {
                println!(
                    "{}: {} cells — {} done, {} failed, {} pending; journal {} entries{}",
                    dir,
                    s.total,
                    s.done,
                    s.failed,
                    s.pending,
                    s.journal_entries,
                    if s.journal_truncated { " (truncated tail)" } else { "" }
                );
                exit(0)
            }
            Err(e) => {
                eprintln!("{e}");
                exit(1)
            }
        },
        _ => experiment_usage(),
    }
}

/// Splits `args` into `--key value` options and bare `--flag` flags (the
/// same shape `main` parses inline), bailing to `usage` on a positional.
fn parse_flags(
    args: &[String],
    usage: fn() -> !,
) -> (HashMap<String, String>, Vec<String>) {
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut flags: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            eprintln!("unexpected argument {:?}", args[i]);
            usage();
        };
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            opts.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            flags.push(key.to_string());
            i += 1;
        }
    }
    (opts, flags)
}

/// `fairsched serve` — the online scheduling daemon (see docs/SERVE.md).
///
/// Initializes (or verifies) DIR's identity, restores the snapshot,
/// replays the accepted journal tail, and drains the inbox until a
/// `stop` message arrives; then finalizes `trace.json`/`schedule.json`
/// and optionally re-runs the batch engine over the grown trace to prove
/// the incrementally built schedule byte-identical.
fn serve_main(args: &[String]) -> ! {
    use fairsched::serve::{Daemon, HttpServer, ServeConfig};

    fn serve_usage() -> ! {
        eprintln!(
            "usage: fairsched serve --dir DIR [options]

  --dir DIR            the serve directory (created if missing)
  --workload SPEC      workload registry spec seeding the base trace
                       (default fpt:k=4; fixed at first init)
  --scheduler SPEC     scheduler registry spec (default fairshare)
  --seed S             seed for workload and scheduler (default 42)
  --http [ADDR]        serve GET /status /report /series on ADDR
                       (default 127.0.0.1:0; bound address is printed
                       and written to DIR/http.txt)
  --poll-ms N          inbox poll interval (default 50)
  --batch-check        after stopping, re-run the batch engine over the
                       grown trace and exit 1 unless schedules match

The daemon exits when a `fairsched submit --dir DIR --stop` message is
applied. kill -9 at any point is safe: restart with the same command and
the journal replays to the identical state."
        );
        exit(2)
    }

    if args.iter().any(|a| a == "--help" || a == "-h") {
        serve_usage();
    }
    let (opts, flags) = parse_flags(args, serve_usage);
    let get = |k: &str, d: &str| opts.get(k).cloned().unwrap_or_else(|| d.to_string());
    let has = |k: &str| flags.iter().any(|f| f == k);
    let Some(dir) = opts.get("dir").map(std::path::PathBuf::from) else {
        serve_usage();
    };

    // Identity: defaults come from the existing config when reopening, so
    // `fairsched serve --dir D` resumes without restating the specs; any
    // flag that *is* passed must agree with the stored identity.
    let existing = ServeConfig::path(&dir).exists().then(|| {
        ServeConfig::load(&dir).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        })
    });
    let base = existing.unwrap_or_else(|| ServeConfig {
        workload: "fpt:k=4".to_string(),
        scheduler: "fairshare".to_string(),
        seed: 42,
    });
    let config = ServeConfig {
        workload: get("workload", &base.workload),
        scheduler: get("scheduler", &base.scheduler),
        seed: get("seed", &base.seed.to_string())
            .parse()
            .unwrap_or_else(|_| serve_usage()),
    };
    config.init(&dir).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });

    let mut daemon = Daemon::open(&dir).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    let server = (has("http") || opts.contains_key("http")).then(|| {
        let server = HttpServer::start(&get("http", "127.0.0.1:0"), daemon.endpoints())
            .unwrap_or_else(|e| {
                eprintln!("cannot bind http listener: {e}");
                exit(1)
            });
        let addr = server.addr().to_string();
        println!("http: listening on {addr}");
        fairsched::core::journal::atomic_write(&dir.join("http.txt"), &addr)
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(1)
            });
        server
    });
    let poll_ms: u64 = get("poll-ms", "50").parse().unwrap_or_else(|_| serve_usage());

    println!(
        "serving {} — workload {}, scheduler {}, seed {} (applied_seq {})",
        dir.display(),
        config.workload,
        config.scheduler,
        config.seed,
        daemon.applied_seq(),
    );
    daemon.run(poll_ms).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    if let Some(server) = server {
        server.stop();
    }
    daemon.finalize().unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    println!(
        "stopped at t={:?}: {} jobs ({} admitted online), {} completed, {} messages applied",
        daemon.session().stepped_to(),
        daemon.session().trace().n_jobs(),
        daemon.session().admissions().len(),
        daemon.session().completed_jobs(),
        daemon.applied_seq(),
    );
    if has("batch-check") {
        match daemon.batch_check() {
            Ok(true) => println!("batch check: schedules byte-identical"),
            Ok(false) => {
                eprintln!("batch check: MISMATCH (see schedule.batch.json)");
                exit(1)
            }
            Err(e) => {
                eprintln!("batch check failed: {e}");
                exit(1)
            }
        }
    }
    exit(0)
}

/// `fairsched submit` — drop one message into a serve directory's inbox.
fn submit_main(args: &[String]) -> ! {
    use fairsched::serve::{Message, SubmissionQueue};

    fn submit_usage() -> ! {
        eprintln!(
            "usage: fairsched submit --dir DIR --org N --release T --proc T [--deadline T]
       fairsched submit --dir DIR --advance T
       fairsched submit --dir DIR --stop

Commits one message into DIR/queue/inbox/ with an atomic write-then-
rename; a running `fairsched serve` daemon picks it up on its next poll."
        );
        exit(2)
    }

    if args.iter().any(|a| a == "--help" || a == "-h") {
        submit_usage();
    }
    let (opts, flags) = parse_flags(args, submit_usage);
    let has = |k: &str| flags.iter().any(|f| f == k);
    let num = |k: &str| -> Option<u64> {
        opts.get(k).map(|v| v.parse().unwrap_or_else(|_| submit_usage()))
    };
    let Some(dir) = opts.get("dir").map(std::path::PathBuf::from) else {
        submit_usage();
    };

    let message = if has("stop") {
        Message::Stop
    } else if let Some(until) = num("advance") {
        Message::Advance { until }
    } else {
        match (opts.get("org"), num("release"), num("proc")) {
            (Some(org), Some(release), Some(proc_time)) => Message::Submit {
                org: org.parse().unwrap_or_else(|_| submit_usage()),
                release,
                proc_time,
                deadline: num("deadline"),
            },
            _ => submit_usage(),
        }
    };
    let queue = SubmissionQueue::open(&dir).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    let path = queue.submit(&message).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    println!("submitted {}", path.display());
    exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("experiment") {
        experiment_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        serve_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("submit") {
        submit_main(&args[1..]);
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut flags: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                opts.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        } else {
            eprintln!("unexpected argument {:?}", args[i]);
            usage();
        }
    }
    let get = |k: &str, d: &str| opts.get(k).cloned().unwrap_or_else(|| d.to_string());
    let has = |k: &str| flags.iter().any(|f| f == k);

    let horizon: u64 = get("horizon", "20000").parse().unwrap_or_else(|_| usage());
    let orgs: usize = get("orgs", "5").parse().unwrap_or_else(|_| usage());
    let seed: u64 = get("seed", "42").parse().unwrap_or_else(|_| usage());
    let split = if has("uniform-split") {
        MachineSplit::Uniform
    } else {
        MachineSplit::Zipf(1.0)
    };

    // Resolve the workload flags into one registry spec: `--workload` is
    // used verbatim; `--preset` and `--swf` are sugar for `synth:` /
    // `swf:` specs. Either way the trace is built through the shared
    // workload registry — the same path the bench tables and sessions use.
    let (workload_spec, source): (WorkloadSpec, String) = if let Some(raw) =
        opts.get("workload")
    {
        // The classic workload flags only parameterize the --preset/--swf
        // sugar; with a full spec they would be silently contradicted, so
        // say which ones are being ignored.
        let ignored: Vec<&str> =
            ["preset", "scale", "swf", "machines", "window-start", "orgs"]
                .into_iter()
                .filter(|k| opts.contains_key(*k))
                .chain(has("uniform-split").then_some("uniform-split"))
                .collect();
        if !ignored.is_empty() {
            eprintln!(
                "warning: --workload takes a complete spec; ignoring --{} (set them as spec parameters instead)",
                ignored.join(", --")
            );
        }
        let spec: WorkloadSpec = raw.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });
        let source = spec.to_string();
        (spec, source)
    } else if let Some(path) = opts.get("swf") {
        // Parse once up front for the summary line (the registry will
        // re-read the file; CLI startup cost, not a hot path).
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        let records = swf::parse(&text).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });
        let stats = swf::stats(&records);
        eprintln!(
            "parsed {} jobs / {} users, span {}, median runtime {}",
            stats.jobs, stats.users, stats.span, stats.runtime_percentiles.1
        );
        let start: u64 = get("window-start", "0").parse().unwrap_or_else(|_| usage());
        let machines: usize = get("machines", "64").parse().unwrap_or_else(|_| usage());
        if path.contains([',', '=']) {
            eprintln!("--swf path {path:?} contains ',' or '=' (unrepresentable in a workload spec)");
            exit(1)
        }
        let mut spec = WorkloadSpec::bare("swf")
            .with("path", path)
            .with("start", start)
            .with("end", start + horizon)
            .with("machines", machines)
            .with("orgs", orgs);
        if matches!(split, MachineSplit::Uniform) {
            spec = spec.with("split", "uniform");
        }
        (spec, format!("SWF {path}"))
    } else {
        let name = PresetName::parse(&get("preset", "lpc")).unwrap_or_else(|| usage());
        let scale: f64 = get("scale", "0.1").parse().unwrap_or_else(|_| usage());
        (
            synth_spec(name, scale, orgs, split, horizon),
            format!("{} (synthetic, scale {scale})", name.label()),
        )
    };
    let trace: Trace = WorkloadRegistry::shared()
        .build(&workload_spec, &WorkloadContext { seed })
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });

    // The requested fairness metrics: a comma-separated list of metric
    // registry specs (multi-parameter specs survive the outer split).
    let metric_specs: Vec<MetricSpec> =
        MetricSpec::parse_list(&get("metrics", &DEFAULT_REPORT_METRICS.join(",")))
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                exit(1)
            });

    // One session template: trace + horizon + seed, any registry scheduler.
    let spec = get("scheduler", "directcontr").to_lowercase();
    let session = || Simulation::new(&trace).horizon(horizon).seed(seed);
    let result = session().scheduler(&spec).and_then(|s| s.run()).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });

    // The exact REF reference run, serving both the human fairness
    // comparison and reference-based metrics (delay, ranking). Skipped
    // when REF itself is evaluated — its own result is the reference
    // then — or with --no-reference, where reference-based metrics fail
    // with a typed error below.
    let fair = if !has("no-reference") && spec != "ref" {
        Some(session().scheduler("ref").and_then(|s| s.run()).unwrap_or_else(|e| {
            eprintln!("reference run failed: {e}");
            exit(1)
        }))
    } else {
        None
    };
    let unfairness = fair.as_ref().filter(|_| spec != "ref").map(|fair| {
        FairnessReport::from_schedules(&trace, &result.schedule, &fair.schedule, horizon)
    });

    // The typed report: the session's measurement pipeline, shared with
    // bench tables and grid sweeps. REF may serve as its own reference.
    let reference = if spec == "ref" { Some(&result) } else { fair.as_ref() };
    let mut report = Report::evaluate(
        MetricRegistry::shared(),
        &metric_specs,
        &trace,
        &result,
        reference,
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });
    report.seed = seed;
    report.workload_spec = Some(workload_spec.clone());
    report.scheduler_spec = spec.parse().ok();

    if has("json") {
        let report_value = report.to_json_value();
        let take = |key: &str| report_value.get(key).expect("report field").clone();
        let payload = Value::Object(vec![
            ("workload".into(), Value::String(source)),
            ("workload_spec".into(), Value::String(workload_spec.to_string())),
            ("scheduler_spec".into(), Value::String(spec)),
            ("scheduler".into(), Value::String(result.scheduler.clone())),
            ("n_orgs".into(), Value::Number(trace.n_orgs().to_string())),
            (
                "n_machines".into(),
                Value::Number(trace.cluster_info().n_machines().to_string()),
            ),
            ("n_jobs".into(), Value::Number(trace.n_jobs().to_string())),
            ("horizon".into(), Value::Number(horizon.to_string())),
            ("seed".into(), Value::Number(seed.to_string())),
            ("started_jobs".into(), Value::Number(result.started_jobs.to_string())),
            ("completed_jobs".into(), Value::Number(result.completed_jobs.to_string())),
            ("busy_time".into(), Value::Number(result.busy_time.to_string())),
            ("utilization".into(), serde::Serialize::to_value(&result.utilization)),
            (
                "coalition_value".into(),
                Value::Number(result.coalition_value().to_string()),
            ),
            ("metric_specs".into(), take("metric_specs")),
            ("orgs".into(), take("orgs")),
            ("aggregates".into(), take("aggregates")),
            (
                "unfairness_vs_ref".into(),
                match &unfairness {
                    Some(r) => serde::Serialize::to_value(&r.unfairness()),
                    None => Value::Null,
                },
            ),
        ]);
        // Time-series metrics (the `timeline` family) ride along only
        // when evaluated, keeping scalar-only reports schema-identical to
        // the historical goldens.
        let payload = match report_value.get("series") {
            Some(series) => match payload {
                Value::Object(mut fields) => {
                    fields.push(("series".into(), series.clone()));
                    Value::Object(fields)
                }
                other => other,
            },
            None => payload,
        };
        println!("{}", payload.to_json_pretty());
        return;
    }

    println!(
        "workload: {source} — {} orgs, {} machines, {} jobs, horizon {horizon}",
        trace.n_orgs(),
        trace.cluster_info().n_machines(),
        trace.n_jobs()
    );

    println!(
        "\nscheduler {}: started {}, completed {}, utilization {:.1}%",
        result.scheduler,
        result.started_jobs,
        result.completed_jobs,
        100.0 * result.utilization
    );

    println!("\nper-organization metrics:");
    print!("{}", report.render_table());

    if let Some(report) = &unfairness {
        println!("\nfairness vs exact REF reference:");
        println!("{report}");
    }

    if has("gantt") {
        println!("\n{}", render_gantt(&trace, &result.schedule, horizon, 100));
    }
}
