//! `fairsched` — the command-line front end.
//!
//! Replays a workload (a real SWF log or a synthetic preset) against any
//! scheduler in the registry, reports per-organization utilities, the
//! fairness metric Δψ/p_tot against the exact REF reference, resource
//! utilization, and optionally an ASCII Gantt chart or a JSON report.
//!
//! ```text
//! # synthetic preset
//! fairsched --preset lpc --scheduler directcontr --orgs 5 --horizon 20000
//! # any registry spec works, parameters included
//! fairsched --preset lpc --scheduler rand:perms=75
//! fairsched --preset lpc --scheduler general-ref:util=flowtime
//! # workloads are registry specs too — the whole run is pure data
//! fairsched --workload synth:preset=ricc,scale=0.02,orgs=4 --scheduler fairshare
//! fairsched --workload fpt:k=6 --scheduler rand:perms=15 --horizon 2000
//! # real archive log
//! fairsched --swf ./LPC-EGEE-2004-1.2-cln.swf --machines 70 --orgs 5 \
//!           --scheduler fairshare --horizon 50000
//! # machine-readable output
//! fairsched --preset lpc --scale 0.1 --json
//! # show the schedule
//! fairsched --preset lpc --scale 0.1 --horizon 500 --gantt
//! ```

use fairsched::core::fairness::FairnessReport;
use fairsched::core::scheduler::registry::Registry;
use fairsched::core::Trace;
use fairsched::sim::gantt::render_gantt;
use fairsched::sim::metrics::org_metrics;
use fairsched::sim::Simulation;
use fairsched::workloads::{
    swf, synth_spec, MachineSplit, PresetName, WorkloadContext, WorkloadRegistry,
    WorkloadSpec,
};
use serde::Serialize;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: fairsched [--workload SPEC | --preset NAME | --swf FILE] [options]

workload:
  --workload SPEC      a workload registry spec: NAME or NAME:key=value,...
                       registered workloads:
{workload_help}
  --preset NAME        sugar for a synth: spec — lpc | pik | ricc | sharcnet
                       (default lpc)
  --scale F            preset scale in (0,1] (default 0.1)
  --swf FILE           sugar for an swf: spec — replay a Standard Workload
                       Format log
  --machines M         machine count (SWF mode; default 64)
  --window-start T     SWF submit window start (default 0)

scheduling:
  --scheduler SPEC     a scheduler registry spec: NAME or NAME:key=value,...
                       (default directcontr); registered schedulers:
{registry_help}
  --orgs K             number of organizations (default 5)
  --horizon T          evaluation horizon (default 20000)
  --seed S             RNG seed (default 42)
  --uniform-split      split machines uniformly instead of Zipf

output:
  --json               print the full report as JSON (schedule omitted)
  --gantt              print an ASCII Gantt chart (small runs)
  --no-reference       skip the exact REF fairness comparison",
        workload_help = WorkloadRegistry::shared()
            .help()
            .lines()
            .map(|l| format!("     {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
        registry_help = Registry::default()
            .help()
            .lines()
            .map(|l| format!("     {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
    );
    exit(2)
}

/// The `--json` payload: run summary plus per-organization metrics.
#[derive(Serialize)]
struct JsonReport {
    workload: String,
    /// Canonical workload registry spec the trace was built from.
    workload_spec: String,
    scheduler_spec: String,
    scheduler: String,
    n_orgs: usize,
    n_machines: usize,
    n_jobs: usize,
    horizon: u64,
    seed: u64,
    started_jobs: usize,
    completed_jobs: usize,
    busy_time: u64,
    utilization: f64,
    coalition_value: i128,
    orgs: Vec<JsonOrg>,
    /// Δψ/p_tot against the exact REF reference (absent with
    /// `--no-reference` or when REF itself is evaluated).
    unfairness_vs_ref: Option<f64>,
}

#[derive(Serialize)]
struct JsonOrg {
    name: String,
    machines: usize,
    completed: usize,
    flow_time: u64,
    waiting_time: u64,
    psi_sp: i128,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut flags: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                opts.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        } else {
            eprintln!("unexpected argument {:?}", args[i]);
            usage();
        }
    }
    let get = |k: &str, d: &str| opts.get(k).cloned().unwrap_or_else(|| d.to_string());
    let has = |k: &str| flags.iter().any(|f| f == k);

    let horizon: u64 = get("horizon", "20000").parse().unwrap_or_else(|_| usage());
    let orgs: usize = get("orgs", "5").parse().unwrap_or_else(|_| usage());
    let seed: u64 = get("seed", "42").parse().unwrap_or_else(|_| usage());
    let split = if has("uniform-split") {
        MachineSplit::Uniform
    } else {
        MachineSplit::Zipf(1.0)
    };

    // Resolve the workload flags into one registry spec: `--workload` is
    // used verbatim; `--preset` and `--swf` are sugar for `synth:` /
    // `swf:` specs. Either way the trace is built through the shared
    // workload registry — the same path the bench tables and sessions use.
    let (workload_spec, source): (WorkloadSpec, String) = if let Some(raw) =
        opts.get("workload")
    {
        // The classic workload flags only parameterize the --preset/--swf
        // sugar; with a full spec they would be silently contradicted, so
        // say which ones are being ignored.
        let ignored: Vec<&str> =
            ["preset", "scale", "swf", "machines", "window-start", "orgs"]
                .into_iter()
                .filter(|k| opts.contains_key(*k))
                .chain(has("uniform-split").then_some("uniform-split"))
                .collect();
        if !ignored.is_empty() {
            eprintln!(
                "warning: --workload takes a complete spec; ignoring --{} (set them as spec parameters instead)",
                ignored.join(", --")
            );
        }
        let spec: WorkloadSpec = raw.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });
        let source = spec.to_string();
        (spec, source)
    } else if let Some(path) = opts.get("swf") {
        // Parse once up front for the summary line (the registry will
        // re-read the file; CLI startup cost, not a hot path).
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        let records = swf::parse(&text).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });
        let stats = swf::stats(&records);
        eprintln!(
            "parsed {} jobs / {} users, span {}, median runtime {}",
            stats.jobs, stats.users, stats.span, stats.runtime_percentiles.1
        );
        let start: u64 = get("window-start", "0").parse().unwrap_or_else(|_| usage());
        let machines: usize = get("machines", "64").parse().unwrap_or_else(|_| usage());
        if path.contains([',', '=']) {
            eprintln!("--swf path {path:?} contains ',' or '=' (unrepresentable in a workload spec)");
            exit(1)
        }
        let mut spec = WorkloadSpec::bare("swf")
            .with("path", path)
            .with("start", start)
            .with("end", start + horizon)
            .with("machines", machines)
            .with("orgs", orgs);
        if matches!(split, MachineSplit::Uniform) {
            spec = spec.with("split", "uniform");
        }
        (spec, format!("SWF {path}"))
    } else {
        let name = PresetName::parse(&get("preset", "lpc")).unwrap_or_else(|| usage());
        let scale: f64 = get("scale", "0.1").parse().unwrap_or_else(|_| usage());
        (
            synth_spec(name, scale, orgs, split, horizon),
            format!("{} (synthetic, scale {scale})", name.label()),
        )
    };
    let trace: Trace = WorkloadRegistry::shared()
        .build(&workload_spec, &WorkloadContext { seed })
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });

    // One session template: trace + horizon + seed, any registry scheduler.
    let spec = get("scheduler", "directcontr").to_lowercase();
    let session = || Simulation::new(&trace).horizon(horizon).seed(seed);
    let result = session().scheduler(&spec).and_then(|s| s.run()).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1)
    });

    // The REF fairness comparison (skippable; pointless against itself).
    let unfairness = if !has("no-reference") && spec != "ref" {
        let fair = session().scheduler("ref").and_then(|s| s.run()).unwrap_or_else(|e| {
            eprintln!("reference run failed: {e}");
            exit(1)
        });
        Some(FairnessReport::from_schedules(
            &trace,
            &result.schedule,
            &fair.schedule,
            horizon,
        ))
    } else {
        None
    };

    let metrics = org_metrics(&trace, &result.schedule, horizon);

    if has("json") {
        let report = JsonReport {
            workload: source,
            workload_spec: workload_spec.to_string(),
            scheduler_spec: spec,
            scheduler: result.scheduler.clone(),
            n_orgs: trace.n_orgs(),
            n_machines: trace.cluster_info().n_machines(),
            n_jobs: trace.n_jobs(),
            horizon,
            seed,
            started_jobs: result.started_jobs,
            completed_jobs: result.completed_jobs,
            busy_time: result.busy_time,
            utilization: result.utilization,
            coalition_value: result.coalition_value(),
            orgs: metrics
                .iter()
                .zip(&result.psi)
                .map(|(m, psi)| JsonOrg {
                    name: trace.orgs()[m.org.index()].name.clone(),
                    machines: trace.cluster_info().machines_of(m.org),
                    completed: m.completed,
                    flow_time: m.flow_time,
                    waiting_time: m.waiting_time,
                    psi_sp: *psi,
                })
                .collect(),
            unfairness_vs_ref: unfairness.as_ref().map(|r| r.unfairness()),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable report")
        );
        return;
    }

    println!(
        "workload: {source} — {} orgs, {} machines, {} jobs, horizon {horizon}",
        trace.n_orgs(),
        trace.cluster_info().n_machines(),
        trace.n_jobs()
    );

    println!(
        "\nscheduler {}: started {}, completed {}, utilization {:.1}%",
        result.scheduler,
        result.started_jobs,
        result.completed_jobs,
        100.0 * result.utilization
    );

    println!("\nper-organization metrics:");
    println!(
        "{:<8}{:>10}{:>10}{:>12}{:>12}{:>14}",
        "org", "machines", "done", "flow", "waiting", "ψ_sp"
    );
    for (m, psi) in metrics.iter().zip(&result.psi) {
        println!(
            "{:<8}{:>10}{:>10}{:>12}{:>12}{:>14}",
            trace.orgs()[m.org.index()].name,
            trace.cluster_info().machines_of(m.org),
            m.completed,
            m.flow_time,
            m.waiting_time,
            psi
        );
    }

    if let Some(report) = &unfairness {
        println!("\nfairness vs exact REF reference:");
        println!("{report}");
    }

    if has("gantt") {
        println!("\n{}", render_gantt(&trace, &result.schedule, horizon, 100));
    }
}
