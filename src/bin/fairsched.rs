//! `fairsched` — the command-line front end.
//!
//! Replays a workload (a real SWF log or a synthetic preset) against a
//! chosen scheduler, reports per-organization utilities, the fairness
//! metric Δψ/p_tot against the exact REF reference, resource utilization,
//! and optionally an ASCII Gantt chart.
//!
//! ```text
//! # synthetic preset
//! fairsched --preset lpc --scheduler directcontr --orgs 5 --horizon 20000
//! # real archive log
//! fairsched --swf ./LPC-EGEE-2004-1.2-cln.swf --machines 70 --orgs 5 \
//!           --scheduler fairshare --horizon 50000
//! # show the schedule
//! fairsched --preset lpc --scale 0.1 --horizon 500 --gantt
//! ```

use fairsched::core::fairness::FairnessReport;
use fairsched::core::scheduler::{
    CurrFairShareScheduler, DirectContrScheduler, FairShareScheduler, FifoScheduler,
    RandScheduler, RandomScheduler, RefScheduler, RoundRobinScheduler, Scheduler,
    UtFairShareScheduler,
};
use fairsched::core::Trace;
use fairsched::sim::gantt::render_gantt;
use fairsched::sim::metrics::org_metrics;
use fairsched::sim::simulate;
use fairsched::workloads::{
    generate, preset, swf, to_trace, MachineSplit, PresetName, UserJob,
};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: fairsched [--preset NAME | --swf FILE] [options]

workload:
  --preset NAME        synthetic preset: lpc | pik | ricc | sharcnet (default lpc)
  --scale F            preset scale in (0,1] (default 0.1)
  --swf FILE           replay a Standard Workload Format log instead
  --machines M         machine count (SWF mode; default: preset figure)
  --window-start T     SWF submit window start (default 0)

scheduling:
  --scheduler NAME     ref | rand | directcontr | fairshare | utfairshare |
                       currfairshare | roundrobin | fifo | random (default directcontr)
  --orgs K             number of organizations (default 5)
  --horizon T          evaluation horizon (default 20000)
  --seed S             RNG seed (default 42)
  --uniform-split      split machines uniformly instead of Zipf

output:
  --gantt              print an ASCII Gantt chart (small runs)
  --no-reference       skip the exact REF fairness comparison"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut flags: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                opts.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        } else {
            eprintln!("unexpected argument {:?}", args[i]);
            usage();
        }
    }
    let get = |k: &str, d: &str| opts.get(k).cloned().unwrap_or_else(|| d.to_string());
    let has = |k: &str| flags.iter().any(|f| f == k);

    let horizon: u64 = get("horizon", "20000").parse().unwrap_or_else(|_| usage());
    let orgs: usize = get("orgs", "5").parse().unwrap_or_else(|_| usage());
    let seed: u64 = get("seed", "42").parse().unwrap_or_else(|_| usage());
    let split = if has("uniform-split") {
        MachineSplit::Uniform
    } else {
        MachineSplit::Zipf(1.0)
    };

    // Build the trace.
    let (trace, source): (Trace, String) = if let Some(path) = opts.get("swf") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        let records = swf::parse(&text).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1)
        });
        let stats = swf::stats(&records);
        eprintln!(
            "parsed {} jobs / {} users, span {}, median runtime {}",
            stats.jobs, stats.users, stats.span, stats.runtime_percentiles.1
        );
        let start: u64 = get("window-start", "0").parse().unwrap_or_else(|_| usage());
        let jobs: Vec<UserJob> = swf::to_user_jobs(&records, start, start + horizon);
        let machines: usize = get("machines", "64").parse().unwrap_or_else(|_| usage());
        (
            to_trace(&jobs, orgs, machines, split, seed).unwrap_or_else(|e| {
                eprintln!("invalid trace: {e}");
                exit(1)
            }),
            format!("SWF {path}"),
        )
    } else {
        let name = PresetName::parse(&get("preset", "lpc")).unwrap_or_else(|| usage());
        let scale: f64 = get("scale", "0.1").parse().unwrap_or_else(|_| usage());
        let p = preset(name, scale, horizon);
        let jobs = generate(&p.synth, seed);
        (
            to_trace(&jobs, orgs, p.synth.n_machines, split, seed).unwrap_or_else(|e| {
                eprintln!("invalid trace: {e}");
                exit(1)
            }),
            format!("{} (synthetic, scale {scale})", name.label()),
        )
    };

    // Build the scheduler.
    let sched_name = get("scheduler", "directcontr").to_lowercase();
    let mut scheduler: Box<dyn Scheduler> = match sched_name.as_str() {
        "ref" => Box::new(RefScheduler::new(&trace)),
        "rand" => Box::new(RandScheduler::new(&trace, 15, seed)),
        "directcontr" => Box::new(DirectContrScheduler::new(seed)),
        "fairshare" => Box::new(FairShareScheduler::new()),
        "utfairshare" => Box::new(UtFairShareScheduler::new()),
        "currfairshare" => Box::new(CurrFairShareScheduler::new()),
        "roundrobin" => Box::new(RoundRobinScheduler::new()),
        "fifo" => Box::new(FifoScheduler::new()),
        "random" => Box::new(RandomScheduler::new(seed)),
        other => {
            eprintln!("unknown scheduler {other:?}");
            usage()
        }
    };

    println!(
        "workload: {source} — {} orgs, {} machines, {} jobs, horizon {horizon}",
        trace.n_orgs(),
        trace.cluster_info().n_machines(),
        trace.n_jobs()
    );

    let result = simulate(&trace, scheduler.as_mut(), horizon);
    println!(
        "\nscheduler {}: started {}, completed {}, utilization {:.1}%",
        result.scheduler,
        result.started_jobs,
        result.completed_jobs,
        100.0 * result.utilization
    );

    println!("\nper-organization metrics:");
    println!(
        "{:<8}{:>10}{:>10}{:>12}{:>12}{:>14}",
        "org", "machines", "done", "flow", "waiting", "ψ_sp"
    );
    let metrics = org_metrics(&trace, &result.schedule, horizon);
    for (m, psi) in metrics.iter().zip(&result.psi) {
        println!(
            "{:<8}{:>10}{:>10}{:>12}{:>12}{:>14}",
            trace.orgs()[m.org.index()].name,
            trace.cluster_info().machines_of(m.org),
            m.completed,
            m.flow_time,
            m.waiting_time,
            psi
        );
    }

    if !has("no-reference") && sched_name != "ref" {
        let mut reference = RefScheduler::new(&trace);
        let fair = simulate(&trace, &mut reference, horizon);
        let report =
            FairnessReport::from_schedules(&trace, &result.schedule, &fair.schedule, horizon);
        println!("\nfairness vs exact REF reference:");
        println!("{report}");
    }

    if has("gantt") {
        println!("\n{}", render_gantt(&trace, &result.schedule, horizon, 100));
    }
}
