//! # fairsched — non-monetary fair scheduling for multi-organizational systems
//!
//! A Rust implementation of Skowron & Rzadca, *"Non-monetary fair
//! scheduling — a cooperative game theory approach"* (SPAA 2013): fair
//! online scheduling of sequential, non-clairvoyant jobs across
//! organizations that pool their clusters, with fairness defined by the
//! Shapley value of the induced cooperative game instead of money or
//! static shares.
//!
//! This crate re-exports the workspace members:
//!
//! * [`core`] (`fairsched-core`) — the model, the strategy-proof utility
//!   `ψ_sp`, and the schedulers (exact REF, randomized RAND, heuristic
//!   DIRECTCONTR, fair-share family, round robin);
//! * [`sim`] (`fairsched-sim`) — the discrete-event engine that replays
//!   traces against any scheduler;
//! * [`workloads`] (`fairsched-workloads`) — SWF parsing and synthetic
//!   multi-organization workload generation;
//! * [`coopgame`] — coalition/Shapley machinery.
//!
//! ## Quick start
//!
//! ```
//! use fairsched::core::{Trace, scheduler::DirectContrScheduler};
//! use fairsched::core::fairness::FairnessReport;
//! use fairsched::core::scheduler::RefScheduler;
//! use fairsched::sim::simulate;
//!
//! // Two organizations pool 3 machines; beta contributes more capacity.
//! let mut b = Trace::builder();
//! let alpha = b.org("alpha", 1);
//! let beta = b.org("beta", 2);
//! b.jobs(alpha, 0, 4, 3); // alpha floods the pool at t=0
//! b.job(beta, 6, 2);      // beta shows up later
//! let trace = b.build().unwrap();
//!
//! // The exact fair schedule (Shapley reference)...
//! let mut reference = RefScheduler::new(&trace);
//! let fair = simulate(&trace, &mut reference, 20);
//!
//! // ...and a practical polynomial heuristic.
//! let mut heuristic = DirectContrScheduler::new(7);
//! let result = simulate(&trace, &mut heuristic, 20);
//!
//! let report = FairnessReport::from_schedules(&trace, &result.schedule, &fair.schedule, 20);
//! println!("{report}");
//! assert!(report.unfairness() < 1.0);
//! ```

pub use coopgame;
pub use fairsched_core as core;
pub use fairsched_sim as sim;
pub use fairsched_workloads as workloads;
