//! # fairsched — non-monetary fair scheduling for multi-organizational systems
//!
//! A Rust implementation of Skowron & Rzadca, *"Non-monetary fair
//! scheduling — a cooperative game theory approach"* (SPAA 2013): fair
//! online scheduling of sequential, non-clairvoyant jobs across
//! organizations that pool their clusters, with fairness defined by the
//! Shapley value of the induced cooperative game instead of money or
//! static shares.
//!
//! This crate re-exports the workspace members:
//!
//! * [`core`] (`fairsched-core`) — the model, the strategy-proof utility
//!   `ψ_sp`, and the schedulers (exact REF, randomized RAND, heuristic
//!   DIRECTCONTR, fair-share family, round robin);
//! * [`sim`] (`fairsched-sim`) — the discrete-event engine that replays
//!   traces against any scheduler;
//! * [`workloads`] (`fairsched-workloads`) — SWF parsing and synthetic
//!   multi-organization workload generation;
//! * [`coopgame`] — coalition/Shapley machinery.
//!
//! ## Quick start
//!
//! Every scheduler is reachable through the
//! [`core::scheduler::registry`]: name it by a spec string — `"ref"`,
//! `"directcontr"`, `"rand:perms=15"`, `"general-ref:util=flowtime"` — and
//! run it with the [`sim::Simulation`] session builder. Workloads are spec
//! strings too, through [`workloads::spec`] — `"synth:preset=ricc,scale=0.5"`,
//! `"swf:path=/logs/lpc.swf"`, `"fpt:k=8"` — so a whole experiment matrix
//! is pure data. Failures (unknown specs, bad parameters, invalid traces,
//! scheduler contract violations) come back as a typed [`sim::SimError`].
//!
//! ```
//! use fairsched::core::fairness::FairnessReport;
//! use fairsched::core::Trace;
//! use fairsched::sim::Simulation;
//!
//! // Two organizations pool 3 machines; beta contributes more capacity.
//! let mut b = Trace::builder();
//! let alpha = b.org("alpha", 1);
//! let beta = b.org("beta", 2);
//! b.jobs(alpha, 0, 4, 3); // alpha floods the pool at t=0
//! b.job(beta, 6, 2);      // beta shows up later
//! let trace = b.build().unwrap();
//!
//! // The exact fair schedule (Shapley reference)...
//! let fair = Simulation::new(&trace).scheduler("ref")?.horizon(20).run()?;
//!
//! // ...and a practical polynomial heuristic.
//! let result = Simulation::new(&trace)
//!     .scheduler("directcontr")?
//!     .horizon(20)
//!     .seed(7)
//!     .run()?;
//!
//! let report = FairnessReport::from_schedules(&trace, &result.schedule, &fair.schedule, 20);
//! println!("{report}");
//! assert!(report.unfairness() < 1.0);
//! # Ok::<(), fairsched::sim::SimError>(())
//! ```
//!
//! To sweep several schedulers with identical settings, use
//! [`sim::Simulation::run_matrix`]; for a full **pure-data experiment
//! matrix** — workloads × schedulers, no construction code — use
//! [`sim::Simulation::run_grid`]:
//!
//! ```
//! use fairsched::sim::Simulation;
//!
//! let grid = Simulation::session().horizon(500).seed(7).run_grid(
//!     &["fpt:k=2".parse()?, "fpt:k=3".parse()?],
//!     &["fairshare".parse()?, "roundrobin".parse()?],
//! );
//! assert_eq!(grid.len(), 4); // row-major: every workload × every scheduler
//! for cell in &grid {
//!     let done = cell.result.as_ref().map(|r| r.completed_jobs).unwrap_or(0);
//!     println!("{} × {} -> {done} jobs", cell.workload, cell.scheduler);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! To add your own policy, implement
//! [`core::scheduler::SchedulerFactory`] and
//! [`core::scheduler::registry::Registry::register`] it; to add your own
//! workload family, implement [`workloads::WorkloadFactory`] (declaring
//! `conformance_specs`, which the workspace conformance suite exercises
//! automatically) and [`workloads::WorkloadRegistry::register`] it — every
//! consumer (CLI, bench tables, sessions) picks both up by spec string.

pub use coopgame;
pub use fairsched_core as core;
pub use fairsched_experiment as experiment;
pub use fairsched_serve as serve;
pub use fairsched_sim as sim;
pub use fairsched_workloads as workloads;
