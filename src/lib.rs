//! # fairsched — non-monetary fair scheduling for multi-organizational systems
//!
//! A Rust implementation of Skowron & Rzadca, *"Non-monetary fair
//! scheduling — a cooperative game theory approach"* (SPAA 2013): fair
//! online scheduling of sequential, non-clairvoyant jobs across
//! organizations that pool their clusters, with fairness defined by the
//! Shapley value of the induced cooperative game instead of money or
//! static shares.
//!
//! This crate re-exports the workspace members:
//!
//! * [`core`] (`fairsched-core`) — the model, the strategy-proof utility
//!   `ψ_sp`, and the schedulers (exact REF, randomized RAND, heuristic
//!   DIRECTCONTR, fair-share family, round robin);
//! * [`sim`] (`fairsched-sim`) — the discrete-event engine that replays
//!   traces against any scheduler;
//! * [`workloads`] (`fairsched-workloads`) — SWF parsing and synthetic
//!   multi-organization workload generation;
//! * [`coopgame`] — coalition/Shapley machinery.
//!
//! ## Quick start
//!
//! Every scheduler is reachable through the
//! [`core::scheduler::registry`]: name it by a spec string — `"ref"`,
//! `"directcontr"`, `"rand:perms=15"`, `"general-ref:util=flowtime"` — and
//! run it with the [`sim::Simulation`] session builder. Failures (unknown
//! specs, bad parameters, invalid traces, scheduler contract violations)
//! come back as a typed [`sim::SimError`].
//!
//! ```
//! use fairsched::core::fairness::FairnessReport;
//! use fairsched::core::Trace;
//! use fairsched::sim::Simulation;
//!
//! // Two organizations pool 3 machines; beta contributes more capacity.
//! let mut b = Trace::builder();
//! let alpha = b.org("alpha", 1);
//! let beta = b.org("beta", 2);
//! b.jobs(alpha, 0, 4, 3); // alpha floods the pool at t=0
//! b.job(beta, 6, 2);      // beta shows up later
//! let trace = b.build().unwrap();
//!
//! // The exact fair schedule (Shapley reference)...
//! let fair = Simulation::new(&trace).scheduler("ref")?.horizon(20).run()?;
//!
//! // ...and a practical polynomial heuristic.
//! let result = Simulation::new(&trace)
//!     .scheduler("directcontr")?
//!     .horizon(20)
//!     .seed(7)
//!     .run()?;
//!
//! let report = FairnessReport::from_schedules(&trace, &result.schedule, &fair.schedule, 20);
//! println!("{report}");
//! assert!(report.unfairness() < 1.0);
//! # Ok::<(), fairsched::sim::SimError>(())
//! ```
//!
//! To sweep several schedulers with identical settings, use
//! [`sim::Simulation::run_matrix`]; to add your own policy, implement
//! [`core::scheduler::SchedulerFactory`] and
//! [`core::scheduler::registry::Registry::register`] it — every consumer
//! (CLI, bench tables, sessions) picks it up by spec string.

pub use coopgame;
pub use fairsched_core as core;
pub use fairsched_sim as sim;
pub use fairsched_workloads as workloads;
